"""Tests of the online HTTP serving tier (repro.serve.http).

Covers the coalescing contract of the DynamicBatcher, the JSON endpoint
surfaces over real sockets, hot snapshot swaps racing in-flight
requests, the cold-user extraction path, the reload lock, and the CLI
``serve`` entry point driven from a worker thread.
"""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.cli import build_parser, cmd_serve, main
from repro.core import GNMR, GNMRConfig
from repro.data import leave_one_out_split
from repro.models import NGCF, BiasMF
from repro.serve import (
    DynamicBatcher,
    RecommendationHTTPServer,
    RecommendationService,
    ServerBusy,
)


@pytest.fixture(scope="module")
def split(small_taobao):
    return leave_one_out_split(small_taobao)


@pytest.fixture(scope="module")
def gnmr(split):
    return GNMR(split.train, GNMRConfig(pretrain=False, seed=0))


def _get(port: int, path: str) -> tuple[int, dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _post(port: int, path: str, body: bytes) -> tuple[int, dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("POST", path, body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError("condition not reached in time")


class GatedService(RecommendationService):
    """A service whose ``recommend`` blocks on an event — lets tests pin
    the batcher worker mid-flush so requests pile up deterministically."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()
        self.gate.set()
        self.calls: list[list[int]] = []

    def recommend(self, users, k=None):
        self.calls.append(np.atleast_1d(users).tolist())
        self.gate.wait()
        return super().recommend(users, k)


# ----------------------------------------------------------------------
# DynamicBatcher
# ----------------------------------------------------------------------
class TestDynamicBatcher:
    def test_coalesces_queued_requests_into_one_call(self):
        calls = []

        def fn(users, k):
            calls.append(list(users))
            return [(u, k) for u in users]

        batcher = DynamicBatcher(fn, max_batch=8, max_wait_ms=50.0,
                                 autostart=False)
        pending = [batcher.submit(user, k=3) for user in (2, 5, 7, 1)]
        batcher.start()
        assert [p.result(timeout=5.0) for p in pending] == [
            (2, 3), (5, 3), (7, 3), (1, 3)]
        assert calls == [[2, 5, 7, 1]]
        stats = batcher.stats()
        assert stats["submitted"] == 4
        assert stats["batches"] == 1
        assert stats["largest_batch"] == 4
        assert stats["mean_batch_size"] == 4.0
        batcher.close()

    def test_max_wait_flushes_partial_batch(self):
        batcher = DynamicBatcher(lambda users, k: [u * 10 for u in users],
                                 max_batch=64, max_wait_ms=5.0)
        assert batcher.submit(3, k=1).result(timeout=5.0) == 30
        assert batcher.stats()["largest_batch"] == 1
        batcher.close()

    def test_distinct_k_one_call_per_group(self):
        calls = []

        def fn(users, k):
            calls.append((list(users), k))
            return [(u, k) for u in users]

        batcher = DynamicBatcher(fn, max_batch=8, autostart=False)
        a = batcher.submit(1, k=2)
        b = batcher.submit(2, k=4)
        c = batcher.submit(3, k=2)
        batcher.start()
        assert a.result(timeout=5.0) == (1, 2)
        assert b.result(timeout=5.0) == (2, 4)
        assert c.result(timeout=5.0) == (3, 2)
        assert sorted(calls) == [([1, 3], 2), ([2], 4)]
        # one drain cycle, two fn executions
        assert batcher.stats()["batches"] == 2
        batcher.close()

    def test_fn_error_propagates_to_every_waiter(self):
        def fn(users, k):
            raise KeyError("boom")

        batcher = DynamicBatcher(fn, max_batch=4, autostart=False)
        pending = [batcher.submit(u, k=1) for u in (0, 1)]
        batcher.start()
        for p in pending:
            with pytest.raises(KeyError, match="boom"):
                p.result(timeout=5.0)
        batcher.close()

    def test_wrong_row_count_is_an_error(self):
        batcher = DynamicBatcher(lambda users, k: [0], max_batch=4,
                                 autostart=False)
        pending = [batcher.submit(u, k=1) for u in (0, 1)]
        batcher.start()
        for p in pending:
            with pytest.raises(RuntimeError, match="returned 1 rows"):
                p.result(timeout=5.0)
        batcher.close()

    def test_bounded_queue_sheds_load(self):
        batcher = DynamicBatcher(lambda users, k: list(users), max_queue=1,
                                 autostart=False)
        batcher.submit(0, k=1)
        with pytest.raises(ServerBusy):
            batcher.submit(1, k=1)
        batcher.close()

    def test_close_fails_pending_and_rejects_submit(self):
        batcher = DynamicBatcher(lambda users, k: list(users),
                                 autostart=False)
        pending = batcher.submit(0, k=1)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed before"):
            pending.result(timeout=1.0)
        with pytest.raises(RuntimeError, match="batcher is closed"):
            batcher.submit(1, k=1)
        batcher.close()  # idempotent

    def test_result_timeout(self):
        batcher = DynamicBatcher(lambda users, k: list(users),
                                 autostart=False)
        pending = batcher.submit(0, k=1)
        with pytest.raises(TimeoutError):
            pending.result(timeout=0.01)
        batcher.close()

    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0}, {"max_wait_ms": -1.0}, {"max_queue": 0}])
    def test_invalid_dials_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DynamicBatcher(lambda users, k: list(users), **kwargs)


# ----------------------------------------------------------------------
# HTTP endpoints
# ----------------------------------------------------------------------
class TestEndpoints:
    @pytest.fixture(scope="class")
    def service(self, gnmr, split):
        return RecommendationService(gnmr, train=split.train, k_default=5)

    @pytest.fixture(scope="class")
    def server(self, service):
        server = RecommendationHTTPServer(service, port=0,
                                          poll_interval_ms=60_000.0).start()
        yield server
        server.close()

    def test_healthz_schema(self, server, service):
        status, payload = _get(server.port, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["retriever"] == "exact"
        assert payload["snapshot_version"] == service.snapshot_version
        assert payload["uptime_s"] > 0

    def test_recommend_matches_library_direct(self, server, service):
        status, payload = _get(server.port, "/recommend?user=7&k=4")
        assert status == 200
        # a quiescent server flushes a batch of one, the same arity as
        # the direct call — items and scores must match byte for byte
        direct = service.recommend(np.array([7]), 4).to_payload()[0]
        assert payload["items"] == direct["items"]
        assert payload["user"] == 7 and payload["k"] == 4
        assert payload["cold"] is False
        assert payload["snapshot_version"] == service.snapshot_version

    def test_recommend_uses_default_k(self, server, service):
        status, payload = _get(server.port, "/recommend?user=0")
        assert status == 200
        assert len(payload["items"]) == service.k_default

    def test_post_batch_matches_library_direct(self, server, service):
        body = json.dumps({"users": [3, 9, 12], "k": 6}).encode()
        status, payload = _post(server.port, "/recommend", body)
        assert status == 200
        direct = service.recommend(np.array([3, 9, 12]), 6).to_payload()
        assert payload["recommendations"] == direct
        assert payload["k"] == 6

    @pytest.mark.parametrize("path", [
        "/recommend",                 # missing user
        "/recommend?user=oops",      # non-integer
        "/recommend?user=10000",     # out of range
        "/recommend?user=-1",        # out of range
        "/recommend?user=0&k=0",     # non-positive k
    ])
    def test_bad_single_requests_are_400(self, server, path):
        status, payload = _get(server.port, path)
        assert status == 400
        assert "error" in payload

    @pytest.mark.parametrize("body", [
        b"not json",
        b"{}",
        b'{"users": []}',
        b'{"users": [99999]}',
        b'{"users": [0], "k": 0}',
    ])
    def test_bad_batch_requests_are_400(self, server, body):
        status, payload = _post(server.port, "/recommend", body)
        assert status == 400
        assert "error" in payload

    def test_unknown_paths_are_404(self, server):
        assert _get(server.port, "/nope")[0] == 404
        assert _post(server.port, "/nope", b"{}")[0] == 404

    def test_stats_schema_and_counters(self, server):
        status, payload = _get(server.port, "/stats")
        assert status == 200
        assert payload["requests"]["total"] >= payload["requests"]["recommend"]
        assert payload["requests"]["recommend"] >= 1
        assert payload["requests"]["recommend_batch"] >= 1
        assert payload["requests"]["errors"] >= 1   # the 400s above
        for stage in ("queue_wait", "retrieve", "request"):
            window = payload["latency_ms"][stage]
            assert window["count"] >= 1
            assert window["p50_ms"] > 0
            assert window["p99_ms"] >= window["p50_ms"] > 0
            assert window["max_ms"] >= window["p99_ms"]
        assert payload["snapshot"]["swaps"] == 0
        assert payload["snapshot"]["retriever"] == "exact"
        assert payload["batcher"]["submitted"] >= 1


class TestCoalescingOverHTTP:
    def test_concurrent_requests_share_batches(self, gnmr, split):
        service = GatedService(gnmr, train=split.train, k_default=5)
        server = RecommendationHTTPServer(service, port=0, max_batch=16,
                                          max_wait_ms=20.0,
                                          poll_interval_ms=60_000.0).start()
        try:
            service.gate.clear()
            results: dict[int, tuple[int, dict]] = {}

            def hit(user):
                results[user] = _get(server.port,
                                     f"/recommend?user={user}&k=5")

            threads = [threading.Thread(target=hit, args=(u,), daemon=True)
                       for u in range(8)]
            for t in threads:
                t.start()
            # every request is enqueued before the worker may execute
            _wait_until(lambda: server.batcher.stats()["submitted"] == 8)
            service.gate.set()
            for t in threads:
                t.join(timeout=30)
            assert sorted(results) == list(range(8))
            stats = server.batcher.stats()
            assert stats["batches"] < 8          # coalescing happened
            assert stats["largest_batch"] >= 2
            reference = {
                row["user"]: row["items"] for row in
                service.recommend(np.arange(8, dtype=np.int64),
                                  5).to_payload()}
            for user, (status, payload) in results.items():
                assert status == 200
                assert [r["item"] for r in payload["items"]] == \
                    [r["item"] for r in reference[user]]
        finally:
            service.gate.set()
            server.close()

    def test_full_queue_is_503(self, gnmr, split):
        service = GatedService(gnmr, train=split.train, k_default=5)
        server = RecommendationHTTPServer(service, port=0, max_batch=1,
                                          max_queue=1,
                                          poll_interval_ms=60_000.0).start()
        try:
            service.gate.clear()
            first: list = []
            second: list = []
            t1 = threading.Thread(
                target=lambda: first.append(
                    _get(server.port, "/recommend?user=0&k=2")), daemon=True)
            t1.start()
            # the worker has dequeued request 1 and is pinned on the gate
            _wait_until(lambda: len(service.calls) >= 1)
            t2 = threading.Thread(
                target=lambda: second.append(
                    _get(server.port, "/recommend?user=1&k=2")), daemon=True)
            t2.start()
            # request 2 now fills the one queue slot
            _wait_until(lambda: server.batcher.stats()["submitted"] == 2)
            status, payload = _get(server.port, "/recommend?user=2&k=2")
            assert status == 503
            assert "queue full" in payload["error"]
            service.gate.set()
            t1.join(timeout=30)
            t2.join(timeout=30)
            assert first[0][0] == 200 and second[0][0] == 200
        finally:
            service.gate.set()
            server.close()

    def test_stuck_batch_times_out_as_503(self, gnmr, split):
        service = GatedService(gnmr, train=split.train, k_default=5)
        server = RecommendationHTTPServer(service, port=0,
                                          request_timeout_s=0.05,
                                          poll_interval_ms=60_000.0).start()
        try:
            service.gate.clear()
            status, payload = _get(server.port, "/recommend?user=0&k=2")
            assert status == 503
            assert "did not complete" in payload["error"]
        finally:
            service.gate.set()
            server.close()


# ----------------------------------------------------------------------
# hot snapshot swap
# ----------------------------------------------------------------------
class TestHotSwap:
    def _bump(self, model):
        model.user_embeddings.data += 0.25
        model.on_step_end()

    def test_check_freshness_swaps_once(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=7))
        service = RecommendationService(model, train=split.train, k_default=5)
        server = RecommendationHTTPServer(service, port=0,
                                          poll_interval_ms=60_000.0).start()
        try:
            assert server.check_freshness() is False
            old_retriever = service.retriever
            v0 = service.snapshot_version
            self._bump(model)
            assert server.check_freshness() is True
            assert service.snapshot_version == model.engine.version != v0
            # the retriever reference was flipped, not mutated in place
            assert service.retriever is not old_retriever
            status, payload = _get(server.port, "/stats")
            assert payload["snapshot"]["swaps"] == 1
            assert payload["snapshot"]["version"] == service.snapshot_version
        finally:
            server.close()

    def test_watcher_swaps_in_background(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=8))
        service = RecommendationService(model, train=split.train, k_default=5)
        server = RecommendationHTTPServer(service, port=0,
                                          poll_interval_ms=10.0).start()
        try:
            self._bump(model)
            _wait_until(lambda: service.snapshot_version
                        == model.engine.version)
            status, payload = _get(server.port, "/healthz")
            assert payload["snapshot_version"] == model.engine.version
        finally:
            server.close()

    def test_watcher_survives_swap_errors(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=9))
        service = RecommendationService(model, train=split.train)
        server = RecommendationHTTPServer(service, port=0,
                                          poll_interval_ms=10.0).start()
        try:
            def boom():
                raise RuntimeError("induced swap failure")

            server.check_freshness = boom
            _wait_until(
                lambda: server.stats.snapshot()["snapshot"]["swap_errors"] >= 2)
            # still serving on the old snapshot
            assert _get(server.port, "/recommend?user=0&k=3")[0] == 200
        finally:
            server.close()

    def test_requests_racing_a_swap_stay_consistent(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=10))
        service = RecommendationService(model, train=split.train, k_default=5)
        server = RecommendationHTTPServer(service, port=0, max_wait_ms=1.0,
                                          poll_interval_ms=60_000.0).start()
        try:
            v0 = service.snapshot_version
            old = {row["user"]: row["items"] for row in
                   service.recommend(np.arange(10, dtype=np.int64),
                                     5).to_payload()}
            results: list[tuple[int, int, dict]] = []
            lock = threading.Lock()

            def storm(user):
                for _ in range(6):
                    status, payload = _get(server.port,
                                           f"/recommend?user={user}&k=5")
                    with lock:
                        results.append((user, status, payload))

            threads = [threading.Thread(target=storm, args=(u,), daemon=True)
                       for u in range(10)]
            for t in threads:
                t.start()
            self._bump(model)
            server.check_freshness()
            for t in threads:
                t.join(timeout=60)
            v1 = service.snapshot_version
            assert v1 != v0
            new = {row["user"]: row["items"] for row in
                   service.recommend(np.arange(10, dtype=np.int64),
                                     5).to_payload()}
            for user, status, payload in results:
                assert status == 200
                items = [r["item"] for r in payload["items"]]
                # every response is exactly the old or the new snapshot's
                # answer — never a half-swapped hybrid
                assert items in (
                    [r["item"] for r in old[user]],
                    [r["item"] for r in new[user]]), (user, payload)
                assert payload["snapshot_version"] in (v0, v1)
        finally:
            server.close()


# ----------------------------------------------------------------------
# cold users
# ----------------------------------------------------------------------
class TestColdUsers:
    def test_gnmr_cold_embeddings_match_full_extraction(self, gnmr):
        users = np.array([0, 3, 17], dtype=np.int64)
        full, _ = gnmr.serving_embeddings()
        cold = gnmr.cold_user_embeddings(users)
        np.testing.assert_allclose(cold, full[users], rtol=1e-12, atol=1e-12)

    def test_ngcf_cold_embeddings_match_full_extraction(self, split):
        model = NGCF(split.train, embedding_dim=8, seed=3)
        users = np.array([1, 5], dtype=np.int64)
        full, _ = model.serving_embeddings()
        cold = model.cold_user_embeddings(users)
        np.testing.assert_allclose(cold, full[users], rtol=1e-12, atol=1e-12)

    def test_cold_ranking_matches_warm_when_fresh(self, gnmr, split):
        service = RecommendationService(gnmr, train=split.train, k_default=5)
        users = np.array([2, 8], dtype=np.int64)
        warm = service.recommend(users, 5)
        cold = service.recommend_cold(users, 5)
        np.testing.assert_array_equal(cold.items, warm.items)

    def test_cold_row_matches_next_snapshot(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=12))
        service = RecommendationService(model, train=split.train)
        model.user_embeddings.data += 0.5
        model.on_step_end()
        # extracted against current parameters, before any reload...
        cold = service.cold_user_embeddings(np.array([4]))
        service.reload()
        # ...it equals that user's row in the snapshot taken afterwards
        np.testing.assert_allclose(cold[0], service.store.user_matrix[4],
                                   rtol=1e-6, atol=1e-6)

    def test_http_cold_flag(self, gnmr, split):
        service = RecommendationService(gnmr, train=split.train, k_default=5)
        server = RecommendationHTTPServer(service, port=0,
                                          poll_interval_ms=60_000.0).start()
        try:
            status, payload = _get(server.port, "/recommend?user=6&cold=1")
            assert status == 200
            assert payload["cold"] is True
            assert len(payload["items"]) == 5
            direct = service.recommend_cold(np.array([6]), 5).to_payload()[0]
            assert payload["items"] == direct["items"]
            stats = _get(server.port, "/stats")[1]
            assert stats["requests"]["cold"] == 1
        finally:
            server.close()

    def test_brute_force_model_delegates(self, split):
        model = BiasMF(split.train.num_users, split.train.num_items, seed=0)
        service = RecommendationService(model, train=split.train, k_default=4)
        result = service.recommend_cold(np.array([0]), 4)
        np.testing.assert_array_equal(
            result.items, service.recommend(np.array([0]), 4).items)
        with pytest.raises(ValueError, match="no cold-user extraction"):
            service.cold_user_embeddings(np.array([0]))

    def test_factored_model_without_extractor_is_400(self, split):
        class TablesOnly:
            name = "tables-only"
            num_users, num_items = 6, 9

            def serving_embeddings(self):
                rng = np.random.default_rng(0)
                return (rng.standard_normal((6, 4)),
                        rng.standard_normal((9, 4)))

        service = RecommendationService(TablesOnly(), k_default=3)
        server = RecommendationHTTPServer(service, port=0,
                                          poll_interval_ms=60_000.0).start()
        try:
            status, payload = _get(server.port, "/recommend?user=0&cold=1")
            assert status == 400
            assert "no cold-user extraction" in payload["error"]
            with pytest.raises(ValueError):
                service.recommend_cold(np.array([0]), k=0)
        finally:
            server.close()


# ----------------------------------------------------------------------
# shutdown + concurrency regressions
# ----------------------------------------------------------------------
class TestShutdown:
    def test_close_stops_serving(self, gnmr, split):
        service = RecommendationService(gnmr, train=split.train, k_default=5)
        server = RecommendationHTTPServer(service, port=0,
                                          poll_interval_ms=60_000.0).start()
        port = server.port
        assert _get(port, "/healthz")[0] == 200
        server.close()
        with pytest.raises(ConnectionRefusedError):
            _get(port, "/healthz")
        server.close()  # idempotent

    def test_close_without_start(self, gnmr, split):
        service = RecommendationService(gnmr, train=split.train)
        server = RecommendationHTTPServer(service, port=0,
                                          poll_interval_ms=60_000.0)
        server.close()


class TestReloadRace:
    def test_concurrent_reload_and_recommend(self, split):
        """Regression: two threads reloading (one cold) while requests
        stream must never tear the snapshot/retriever pair."""
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=13))
        service = RecommendationService(model, train=split.train, k_default=5)
        errors: list[BaseException] = []
        stop = threading.Event()

        def reloader(cold):
            try:
                while not stop.is_set():
                    service.reload(cold=cold)
            except BaseException as exc:
                errors.append(exc)

        def requester():
            try:
                while not stop.is_set():
                    result = service.recommend(np.array([0, 1, 2]), 5)
                    assert result.items.shape == (3, 5)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=reloader, args=(cold,),
                                    daemon=True) for cold in (False, True)]
        threads += [threading.Thread(target=requester, daemon=True)
                    for _ in range(2)]
        for t in threads:
            t.start()
        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert service.retriever.exclude is service.exclusions
        assert service.recommend(np.array([0]), 5).items.shape == (1, 5)


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.max_batch == 32
        assert args.max_wait_ms == 2.0
        assert args.poll_interval_ms == 250.0
        assert args.retriever == "exact"

    def test_serve_roundtrip(self, tmp_path):
        checkpoint = tmp_path / "biasmf.npz"
        assert main(["train", "--model", "BiasMF", "--dataset", "taobao",
                     "--users", "25", "--items", "60", "--epochs", "1",
                     "--checkpoint", str(checkpoint)]) == 0
        ready_file = tmp_path / "ready.json"
        args = build_parser().parse_args(
            ["serve", "--checkpoint", str(checkpoint), "--port", "0",
             "--topk", "4", "--ready-file", str(ready_file)])
        args.stop_event = threading.Event()
        codes: list[int] = []
        thread = threading.Thread(target=lambda: codes.append(cmd_serve(args)),
                                  daemon=True)
        thread.start()
        try:
            _wait_until(ready_file.exists, timeout=60)
            ready = json.loads(ready_file.read_text())
            assert ready["serving"] is True
            assert ready["model"] == "BiasMF"
            assert ready["endpoints"] == ["/recommend", "/healthz", "/stats"]
            port = ready["port"]
            status, payload = _get(port, "/recommend?user=0")
            assert status == 200
            assert len(payload["items"]) == 4
        finally:
            args.stop_event.set()
            thread.join(timeout=60)
        assert codes == [0]
        with pytest.raises(ConnectionRefusedError):
            _get(ready["port"], "/healthz")

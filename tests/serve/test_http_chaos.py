"""Chaos test for the serving tier: hot-swap storm with corrupt snapshots.

The snapshot lifecycle's operational contract under fire: when a swap
discovers corrupt serving tables (in-place mutation of the supposedly
frozen snapshot — the in-process stand-in for a torn shm write), the swap
is *rejected*: ``swap_errors`` increments, the service rolls back to the
newest archived good snapshot (``rollbacks`` increments), ``/healthz``
stays green the whole time, and responses bit-match the last good tables.
The storm then keeps going — the next clean poll swaps forward again.
"""

import http.client
import json

import numpy as np
import pytest

from repro.core import GNMR, GNMRConfig
from repro.data import leave_one_out_split
from repro.serve import (
    EmbeddingStore,
    RecommendationHTTPServer,
    RecommendationService,
    SnapshotIntegrityError,
)


@pytest.fixture(scope="module")
def split(small_taobao):
    return leave_one_out_split(small_taobao)


def _get(port: int, path: str) -> tuple[int, dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _bump(model) -> None:
    model.user_embeddings.data += 0.25
    model.on_step_end()


def _corrupt(store) -> None:
    """Flip bits in the frozen serving tables (a torn write, in-process)."""
    store.user_matrix[0, 0] += 1.0


class TestStoreLifecycle:
    """Retention, rollback, and verify-on-transition in isolation."""

    def test_refresh_archives_and_retention_caps_history(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=0))
        store = EmbeddingStore.snapshot(model, retain=2)
        versions = [store.version]
        for _ in range(3):
            _bump(model)
            assert store.refresh(model) is True
            versions.append(store.version)
        # keep-last-2: the first version fell off the archive
        assert store.history_versions() == versions[1:3]

    def test_rollback_restores_bit_exact_tables(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=1))
        store = EmbeddingStore.snapshot(model, retain=2)
        old_version = store.version
        old_users = np.array(store.user_matrix)
        old_hash = store.content_hash
        _bump(model)
        store.refresh(model)
        assert store.version != old_version
        assert store.rollback() == old_version
        np.testing.assert_array_equal(store.user_matrix, old_users)
        assert store.content_hash == old_hash

    def test_rollback_to_specific_version_discards_newer(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=2))
        store = EmbeddingStore.snapshot(model, retain=4)
        first = store.version
        for _ in range(2):
            _bump(model)
            store.refresh(model)
        assert store.rollback(first) == first
        assert store.history_versions() == []

    def test_rollback_with_empty_archive_raises(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=3))
        store = EmbeddingStore.snapshot(model, retain=2)
        with pytest.raises(ValueError, match="no archived snapshot"):
            store.rollback()
        with pytest.raises(ValueError, match="available"):
            _bump(model)
            store.refresh(model)
            store.rollback(version=-12345)

    def test_refresh_rejects_mutated_outgoing_tables(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=4))
        store = EmbeddingStore.snapshot(model, retain=2)
        _corrupt(store)
        _bump(model)
        with pytest.raises(SnapshotIntegrityError):
            store.refresh(model)
        # nothing corrupt was archived as "good"
        assert store.history_versions() == []

    def test_refresh_rejects_producer_hash_mismatch(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=5))
        store = EmbeddingStore.snapshot(model, retain=2)
        version = store.version
        users = np.array(store.user_matrix)
        _bump(model)
        with pytest.raises(SnapshotIntegrityError):
            store.refresh(model, expected_hash="0" * 64)
        # the outgoing snapshot was put back, not left half-swapped
        assert store.version == version
        np.testing.assert_array_equal(store.user_matrix, users)

    def test_retain_zero_disables_archive(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=6))
        store = EmbeddingStore.snapshot(model, retain=0)
        _bump(model)
        store.refresh(model)
        assert store.history_versions() == []

    def test_service_recover_rewires_retriever(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=7))
        service = RecommendationService(model, train=split.train, k_default=5,
                                        auto_refresh=False)
        reference = service.recommend([0, 1, 2])
        _bump(model)
        service.reload()
        old_retriever = service.retriever
        restored = service.recover()
        assert restored == service.snapshot_version
        assert service.retriever is not old_retriever
        after = service.recommend([0, 1, 2])
        np.testing.assert_array_equal(reference.items, after.items)
        np.testing.assert_array_equal(reference.scores, after.scores)


class TestHotSwapStorm:
    """The full chaos loop over a live HTTP server."""

    def test_corrupt_swap_storm_keeps_serving_last_good(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=20))
        service = RecommendationService(model, train=split.train, k_default=5)
        server = RecommendationHTTPServer(service, port=0,
                                          poll_interval_ms=60_000.0).start()
        try:
            # the initial snapshot is the good state every rollback will
            # restore: each corruption destroys the *current* tables, so
            # the archived copy of this one is always the last good
            status, good_reference = _get(server.port,
                                          "/recommend?user=1&k=5")
            assert status == 200
            good_rollback_version = service.snapshot_version
            # one clean swap so the archive holds that known-good snapshot
            _bump(model)
            assert server.check_freshness() is True

            swaps = 1
            swap_errors = rollbacks = 0
            for _ in range(4):
                # torn write lands in the live tables, model moves on
                _corrupt(service.store)
                _bump(model)
                assert server.check_freshness() is False  # rejected
                swap_errors += 1
                rollbacks += 1
                counters = server.stats.snapshot()["snapshot"]
                assert counters["swap_errors"] == swap_errors
                assert counters["rollbacks"] == rollbacks

                # healthz stays green and responses bit-match the last
                # good snapshot the rollback restored
                status, health = _get(server.port, "/healthz")
                assert status == 200 and health["status"] == "ok"
                assert service.snapshot_version == good_rollback_version
                status, payload = _get(server.port, "/recommend?user=1&k=5")
                assert status == 200
                assert payload["items"] == good_reference["items"]

                # the next clean poll swaps forward again
                assert server.check_freshness() is True
                swaps += 1
            good_version = service.snapshot_version

            counters = server.stats.snapshot()["snapshot"]
            assert counters["swaps"] == swaps
            assert counters["swap_errors"] == swap_errors
            assert counters["rollbacks"] == rollbacks
            assert service.snapshot_version == good_version
            # after the storm the served tables verify clean
            service.store.verify()
        finally:
            server.close()

    def test_corruption_with_empty_archive_still_counts(self, split):
        """First-ever swap finds corrupt tables and nothing archived: the
        error is counted, recovery is impossible, serving continues."""
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=21))
        service = RecommendationService(model, train=split.train, k_default=5)
        server = RecommendationHTTPServer(service, port=0,
                                          poll_interval_ms=60_000.0).start()
        try:
            _corrupt(service.store)
            _bump(model)
            assert server.check_freshness() is False
            counters = server.stats.snapshot()["snapshot"]
            assert counters["swap_errors"] == 1
            assert counters["rollbacks"] == 0
            assert _get(server.port, "/healthz")[0] == 200
        finally:
            server.close()

"""Tests of the blocked top-K retriever, backends, and exclusion masks."""

import numpy as np
import pytest

from repro.serve import (
    ExclusionMask,
    MatrixBackend,
    ScorerBackend,
    TopKRetriever,
    backend_for,
)


@pytest.fixture
def tables(rng):
    user_matrix = rng.standard_normal((25, 8))
    item_matrix = rng.standard_normal((40, 8))
    return user_matrix, item_matrix


def brute_force_topk(scores: np.ndarray, k: int) -> np.ndarray:
    """Reference selection: full stable argsort on (-score, item id)."""
    return np.argsort(-scores, axis=1, kind="stable")[:, :k]


class TestMatrixBackend:
    def test_matches_dense_product(self, tables):
        user_matrix, item_matrix = tables
        backend = MatrixBackend(user_matrix, item_matrix)
        users = np.array([3, 0, 7])
        np.testing.assert_allclose(backend.score_block(users),
                                   user_matrix[users] @ item_matrix.T)

    def test_pairs_match_block(self, tables):
        backend = MatrixBackend(*tables)
        users = np.array([1, 2, 3])
        items = np.array([10, 20, 30])
        block = backend.score_block(users)
        np.testing.assert_allclose(backend.score_pairs(users, items),
                                   block[np.arange(3), items])

    def test_dtype_cast(self, tables):
        backend = MatrixBackend(*tables, dtype="float32")
        assert backend.user_matrix.dtype == np.float32
        assert backend.score_block(np.array([0])).dtype == np.float32

    def test_dim_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            MatrixBackend(rng.standard_normal((4, 3)),
                          rng.standard_normal((5, 7)))


class TestScorerBackend:
    def test_matches_model_score(self, tables):
        user_matrix, item_matrix = tables

        class DotModel:
            num_users, num_items = user_matrix.shape[0], item_matrix.shape[0]

            def score(self, users, items):
                return np.sum(user_matrix[users] * item_matrix[items], axis=1)

        brute = ScorerBackend(DotModel())
        fast = MatrixBackend(user_matrix, item_matrix)
        users = np.array([0, 5, 11])
        np.testing.assert_allclose(brute.score_block(users),
                                   fast.score_block(users))

    def test_requires_num_items(self):
        class Bare:
            def score(self, users, items):
                return np.zeros(len(users))

        with pytest.raises(ValueError):
            ScorerBackend(Bare())
        assert ScorerBackend(Bare(), num_items=7).num_items == 7


class TestBackendFor:
    def test_factored_model_gets_matrix(self, tables):
        user_matrix, item_matrix = tables

        class Factored:
            def serving_embeddings(self):
                return user_matrix, item_matrix

        assert isinstance(backend_for(Factored()), MatrixBackend)

    def test_plain_scorer_gets_brute_force(self):
        class Plain:
            num_items = 9

            def score(self, users, items):
                return np.zeros(len(users))

        assert isinstance(backend_for(Plain()), ScorerBackend)


class TestExclusionMask:
    def test_apply_stamps_exactly_the_pairs(self, rng):
        num_users, num_items = 12, 20
        users = rng.integers(0, num_users, 30)
        items = rng.integers(0, num_items, 30)
        mask = ExclusionMask.from_pairs(users, items, num_users, num_items)
        block_users = np.arange(num_users)
        scores = np.zeros((num_users, num_items))
        mask.apply(block_users, scores)
        excluded = set(zip(users.tolist(), items.tolist()))
        for u in range(num_users):
            for i in range(num_items):
                expected = -np.inf if (u, i) in excluded else 0.0
                assert scores[u, i] == expected, (u, i)

    def test_from_dataset_target_vs_all(self, tiny_dataset):
        target = ExclusionMask.from_dataset(tiny_dataset, behaviors="target")
        every = ExclusionMask.from_dataset(tiny_dataset, behaviors="all")
        # user 0: bought {0, 1}, viewed {0, 1} → same; user 2 bought {3},
        # viewed {3} → same; user 1 bought {2}, viewed {1, 2}
        assert set(target.items_for(1).tolist()) == {2}
        assert set(every.items_for(1).tolist()) == {1, 2}
        assert every.counts(np.arange(4)).sum() >= target.counts(np.arange(4)).sum()

    def test_empty_users_are_noops(self):
        mask = ExclusionMask.from_pairs(np.array([], dtype=np.int64),
                                        np.array([], dtype=np.int64), 3, 4)
        scores = np.ones((2, 4))
        mask.apply(np.array([0, 2]), scores)
        assert np.isfinite(scores).all()


class TestTopKRetriever:
    def test_agrees_with_brute_force_argsort(self, tables, rng):
        backend = MatrixBackend(*tables)
        retriever = TopKRetriever(backend, batch_users=7)
        users = np.arange(backend.num_users)
        result = retriever.retrieve(users, k=5)
        expected = brute_force_topk(
            np.asarray(backend.score_block(users), dtype=np.float64), 5)
        np.testing.assert_array_equal(result.items, expected)

    def test_batch_size_invariant(self, tables):
        backend = MatrixBackend(*tables)
        users = np.arange(backend.num_users)
        small = TopKRetriever(backend, batch_users=3).retrieve(users, 6)
        big = TopKRetriever(backend, batch_users=1000).retrieve(users, 6)
        np.testing.assert_array_equal(small.items, big.items)
        np.testing.assert_allclose(small.scores, big.scores)

    def test_never_leaks_excluded_items(self, tables, rng):
        user_matrix, item_matrix = tables
        num_users, num_items = user_matrix.shape[0], item_matrix.shape[0]
        seen_users = rng.integers(0, num_users, 120)
        seen_items = rng.integers(0, num_items, 120)
        mask = ExclusionMask.from_pairs(seen_users, seen_items,
                                        num_users, num_items)
        retriever = TopKRetriever(MatrixBackend(user_matrix, item_matrix),
                                  exclude=mask, batch_users=8)
        result = retriever.retrieve(np.arange(num_users), k=10)
        for row, user in enumerate(result.users):
            leaked = set(result.items[row].tolist()) & set(
                mask.items_for(int(user)).tolist())
            assert not leaked, f"user {user} leaked {leaked}"

    def test_exhausted_catalog_pads_with_minus_one(self, tables):
        user_matrix, item_matrix = tables
        num_items = item_matrix.shape[0]
        # user 0 has seen everything but items 2 and 5
        seen = np.setdiff1d(np.arange(num_items), [2, 5])
        mask = ExclusionMask.from_pairs(np.zeros(seen.size, dtype=np.int64),
                                        seen, user_matrix.shape[0], num_items)
        retriever = TopKRetriever(MatrixBackend(user_matrix, item_matrix),
                                  exclude=mask)
        result = retriever.retrieve(np.array([0]), k=4)
        valid = result.items[0][result.items[0] >= 0]
        assert set(valid.tolist()) == {2, 5}
        assert (result.items[0][2:] == -1).all()
        assert np.isneginf(result.scores[0][2:]).all()
        assert result.as_lists()[0][0][0] in (2, 5)

    def test_k_larger_than_catalog_clamped(self, tables):
        backend = MatrixBackend(*tables)
        result = TopKRetriever(backend).retrieve(np.array([1]), k=10_000)
        assert result.k == backend.num_items

    def test_scalar_user_accepted(self, tables):
        result = TopKRetriever(MatrixBackend(*tables)).retrieve(4, k=3)
        assert result.users.tolist() == [4]
        assert result.items.shape == (1, 3)

    def test_invalid_arguments(self, tables):
        backend = MatrixBackend(*tables)
        with pytest.raises(ValueError):
            TopKRetriever(backend, batch_users=0)
        with pytest.raises(ValueError):
            TopKRetriever(backend).retrieve(np.array([0]), k=0)

    def test_payload_shape(self, tables):
        result = TopKRetriever(MatrixBackend(*tables)).retrieve(
            np.array([0, 1]), k=3)
        payload = result.to_payload()
        assert [entry["user"] for entry in payload] == [0, 1]
        assert all(len(entry["items"]) == 3 for entry in payload)
        assert {"item", "score"} <= set(payload[0]["items"][0])

"""Tests of the approximate retrieval stack: quantizers, k-means, IVF.

The acceptance contracts from ISSUE-6: quantization round-trip error is
bounded, k-means is deterministic under a fixed seed, the inverted lists
partition the catalog (every item exactly once), and the approximate
retriever degenerates to the exact one when nothing is approximated
(``nprobe = num_lists``, ``quant="none"``).
"""

import numpy as np
import pytest

from repro.serve import (
    ApproxRetriever,
    ExclusionMask,
    IVFIndex,
    MatrixBackend,
    ScorerBackend,
    TopKRetriever,
)
from repro.serve.ann import (
    QUANT_KINDS,
    QuantizedItems,
    default_num_lists,
    dequantize_int8,
    kmeans,
    quantize_int8,
)


@pytest.fixture
def tables(rng):
    user_matrix = rng.standard_normal((40, 8)).astype(np.float32)
    item_matrix = rng.standard_normal((120, 8)).astype(np.float32)
    return user_matrix, item_matrix


# ----------------------------------------------------------------------
# quantizers
# ----------------------------------------------------------------------
class TestQuantization:
    def test_int8_round_trip_error_bound(self, rng):
        matrix = rng.standard_normal((200, 16)).astype(np.float32) * 3.0
        codes, scale = quantize_int8(matrix)
        assert codes.dtype == np.int8
        assert scale.dtype == np.float32
        assert np.all(scale > 0)
        decoded = dequantize_int8(codes, scale)
        # symmetric rounding: at most half a quantization step per dim
        assert np.all(np.abs(decoded - matrix) <= scale[None, :] / 2 + 1e-7)

    def test_int8_extremes_map_to_127(self, rng):
        matrix = rng.standard_normal((50, 4)).astype(np.float32)
        codes, _ = quantize_int8(matrix)
        assert np.max(np.abs(codes), axis=0).tolist() == [127] * 4

    def test_int8_zero_column_survives(self):
        matrix = np.zeros((10, 3), dtype=np.float32)
        matrix[:, 0] = 1.0
        codes, scale = quantize_int8(matrix)
        np.testing.assert_allclose(dequantize_int8(codes, scale), matrix)

    def test_fp16_round_trip_error_bound(self, rng):
        matrix = rng.standard_normal((200, 16)).astype(np.float32)
        decoded = QuantizedItems(matrix, kind="fp16").decode()
        # float16 has a 10-bit mantissa: relative error <= 2^-11
        assert np.all(np.abs(decoded - matrix)
                      <= np.abs(matrix) * 2.0 ** -11 + 1e-7)

    def test_none_is_lossless_view(self, rng):
        matrix = rng.standard_normal((20, 4)).astype(np.float32)
        codec = QuantizedItems(matrix, kind="none")
        np.testing.assert_array_equal(codec.decode(), matrix)
        np.testing.assert_array_equal(codec.dense_slice(3, 9), matrix[3:9])

    @pytest.mark.parametrize("kind", QUANT_KINDS)
    def test_scoring_contract(self, rng, kind):
        """prepare_queries(Q) @ dense_slice.T approximates Q @ rows.T."""
        matrix = rng.standard_normal((60, 8)).astype(np.float32)
        queries = rng.standard_normal((5, 8)).astype(np.float32)
        codec = QuantizedItems(matrix, kind=kind)
        approx = codec.prepare_queries(queries) @ codec.dense_slice(0, 60).T
        exact = queries @ matrix.T
        tol = {"none": 1e-6, "fp16": 1e-2, "int8": 0.2}[kind]
        np.testing.assert_allclose(approx, exact, atol=tol)

    def test_compression_ratios(self, rng):
        matrix = rng.standard_normal((100, 16)).astype(np.float32)
        none = QuantizedItems(matrix, kind="none").nbytes
        fp16 = QuantizedItems(matrix, kind="fp16").nbytes
        int8 = QuantizedItems(matrix, kind="int8").nbytes
        assert fp16 == none // 2
        assert int8 < fp16  # 1 byte/coord + one scale row

    def test_unknown_kind_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown quantization"):
            QuantizedItems(rng.standard_normal((4, 2)), kind="int4")


# ----------------------------------------------------------------------
# k-means
# ----------------------------------------------------------------------
class TestKMeans:
    def test_deterministic_under_fixed_seed(self, rng):
        points = rng.standard_normal((300, 6)).astype(np.float32)
        c1, a1 = kmeans(points, 8, seed=7)
        c2, a2 = kmeans(points, 8, seed=7)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(a1, a2)

    def test_seed_changes_clustering(self, rng):
        points = rng.standard_normal((300, 6)).astype(np.float32)
        _, a1 = kmeans(points, 8, seed=0)
        _, a2 = kmeans(points, 8, seed=1)
        assert not np.array_equal(a1, a2)

    def test_recovers_separated_clusters(self, rng):
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]],
                           dtype=np.float32)
        labels = rng.integers(0, 3, 150)
        points = (centers[labels]
                  + 0.1 * rng.standard_normal((150, 2))).astype(np.float32)
        _, assign = kmeans(points, 3, seed=0)
        # same true center -> same learned cluster, pairwise
        for true in range(3):
            got = assign[labels == true]
            assert np.all(got == got[0])

    def test_clamps_clusters_to_points(self, rng):
        points = rng.standard_normal((5, 3)).astype(np.float32)
        centroids, assign = kmeans(points, 50, seed=0)
        assert centroids.shape[0] == 5
        assert sorted(set(assign.tolist())) == [0, 1, 2, 3, 4]

    def test_subsample_assigns_every_point(self, rng):
        points = rng.standard_normal((500, 4)).astype(np.float32)
        _, assign = kmeans(points, 6, seed=0, train_sample=100)
        assert assign.shape == (500,)
        assert np.all((assign >= 0) & (assign < 6))

    def test_empty_clusters_reseeded(self, rng):
        """Duplicate-heavy data empties clusters; reseeding must refill."""
        base = rng.standard_normal((4, 3)).astype(np.float32)
        points = np.concatenate([np.repeat(base, 30, axis=0),
                                 base + 5.0])  # 4 tight clumps + outliers
        _, assign = kmeans(points, 8, seed=0)
        # no cluster may end up empty — every centroid serves someone
        assert np.all(np.bincount(assign, minlength=8) > 0)

    def test_invalid_inputs_rejected(self, rng):
        with pytest.raises(ValueError, match="non-empty"):
            kmeans(np.empty((0, 3)), 2)
        with pytest.raises(ValueError, match="positive"):
            kmeans(rng.standard_normal((10, 2)), 0)


# ----------------------------------------------------------------------
# IVF index
# ----------------------------------------------------------------------
class TestIVFIndex:
    def test_lists_partition_catalog(self, tables):
        _, item_matrix = tables
        index = IVFIndex(item_matrix, num_lists=7)
        gathered = np.concatenate([index.list_items(l)
                                   for l in range(index.num_lists)])
        # every item in exactly one list
        np.testing.assert_array_equal(np.sort(gathered),
                                      np.arange(item_matrix.shape[0]))
        assert index.list_sizes.sum() == item_matrix.shape[0]

    def test_list_items_ascend(self, tables):
        _, item_matrix = tables
        index = IVFIndex(item_matrix, num_lists=7)
        for l in range(index.num_lists):
            ids = index.list_items(l)
            assert np.all(np.diff(ids) > 0) or ids.size <= 1

    def test_default_num_lists(self):
        assert default_num_lists(1) == 1
        assert default_num_lists(100) == 10
        assert default_num_lists(100_000) == 316
        assert default_num_lists(10**9) == 1024  # clamped

    def test_search_block_covers_all_items_when_exhaustive(self, tables):
        user_matrix, item_matrix = tables
        index = IVFIndex(item_matrix, num_lists=5)
        queries = user_matrix[:3]
        counts, items, scores = index.search_block(queries, index.num_lists)
        assert np.all(counts == item_matrix.shape[0])
        bounds = np.concatenate(([0], np.cumsum(counts)))
        for b in range(3):
            seg = items[bounds[b]:bounds[b + 1]]
            np.testing.assert_array_equal(np.sort(seg),
                                          np.arange(item_matrix.shape[0]))
            np.testing.assert_allclose(
                scores[bounds[b]:bounds[b + 1]][np.argsort(seg)],
                queries[b] @ item_matrix.T, rtol=1e-4, atol=1e-5)

    def test_shared_clustering_across_quants(self, tables):
        _, item_matrix = tables
        clustering = kmeans(item_matrix, 6, seed=0)
        built = [IVFIndex(item_matrix, quant=q, clustering=clustering)
                 for q in QUANT_KINDS]
        for index in built[1:]:
            np.testing.assert_array_equal(index.perm, built[0].perm)

    def test_invalid_inputs_rejected(self, tables, rng):
        _, item_matrix = tables
        with pytest.raises(ValueError, match="non-empty"):
            IVFIndex(np.empty((0, 4), dtype=np.float32))
        with pytest.raises(ValueError, match="cover every item"):
            IVFIndex(item_matrix,
                     clustering=(rng.standard_normal((3, 8)),
                                 np.zeros(5, dtype=np.int64)))


# ----------------------------------------------------------------------
# approximate retriever
# ----------------------------------------------------------------------
class TestApproxRetriever:
    def test_exhaustive_unquantized_matches_exact(self, tables):
        backend = MatrixBackend(*tables)
        exact = TopKRetriever(backend).retrieve(np.arange(40), k=10)
        index = IVFIndex(backend.item_matrix, num_lists=6)
        approx = ApproxRetriever(backend, index, nprobe=index.num_lists)
        result = approx.retrieve(np.arange(40), k=10)
        np.testing.assert_array_equal(result.items, exact.items)
        np.testing.assert_allclose(result.scores, exact.scores, rtol=1e-5)

    def test_exhaustive_matches_exact_with_exclusions(self, tables, rng):
        user_matrix, item_matrix = tables
        seen_users = np.repeat(np.arange(40), 5)
        seen_items = rng.integers(0, 120, seen_users.size)
        exclude = ExclusionMask.from_pairs(seen_users, seen_items, 40, 120)
        backend = MatrixBackend(user_matrix, item_matrix)
        exact = TopKRetriever(backend, exclude=exclude).retrieve(
            np.arange(40), k=10)
        index = IVFIndex(item_matrix, num_lists=6)
        approx = ApproxRetriever(backend, index, exclude=exclude,
                                 nprobe=index.num_lists)
        result = approx.retrieve(np.arange(40), k=10)
        np.testing.assert_array_equal(result.items, exact.items)
        np.testing.assert_allclose(result.scores, exact.scores, rtol=1e-5)

    def test_excluded_items_never_surface(self, tables, rng):
        user_matrix, item_matrix = tables
        seen_users = np.repeat(np.arange(40), 20)
        seen_items = rng.integers(0, 120, seen_users.size)
        exclude = ExclusionMask.from_pairs(seen_users, seen_items, 40, 120)
        backend = MatrixBackend(user_matrix, item_matrix)
        approx = ApproxRetriever(backend, exclude=exclude, nprobe=3,
                                 quant="int8")
        result = approx.retrieve(np.arange(40), k=10)
        seen = set(zip(seen_users.tolist(), seen_items.tolist()))
        for u in range(40):
            for item in result.items[u]:
                if item >= 0:
                    assert (u, int(item)) not in seen

    @pytest.mark.parametrize("quant", QUANT_KINDS)
    def test_quantized_recall_is_high(self, tables, quant):
        backend = MatrixBackend(*tables)
        exact = TopKRetriever(backend).retrieve(np.arange(40), k=10)
        approx = ApproxRetriever(backend, nprobe=10**9, quant=quant)
        result = approx.retrieve(np.arange(40), k=10)
        # exhaustive probing: the exact re-rank must absorb nearly all
        # compression error at shortlist width 4k
        overlap = np.mean([np.intersect1d(a, e).size / 10.0
                           for a, e in zip(result.items, exact.items)])
        assert overlap >= 0.95

    def test_returned_scores_are_exact(self, tables):
        """Re-ranked scores are float products, not compressed-domain."""
        user_matrix, item_matrix = tables
        backend = MatrixBackend(user_matrix, item_matrix)
        approx = ApproxRetriever(backend, nprobe=4, quant="int8")
        result = approx.retrieve([0, 1], k=5)
        for row, user in enumerate([0, 1]):
            expected = (user_matrix[user] @ item_matrix.T)[result.items[row]]
            np.testing.assert_allclose(result.scores[row], expected,
                                       rtol=1e-5)

    def test_small_batches_match_one_shot(self, tables):
        backend = MatrixBackend(*tables)
        index = IVFIndex(backend.item_matrix, num_lists=6)
        one = ApproxRetriever(backend, index, nprobe=3)
        many = ApproxRetriever(backend, index, nprobe=3, batch_users=7)
        users = np.arange(40)
        a, b = one.retrieve(users, k=8), many.retrieve(users, k=8)
        np.testing.assert_array_equal(a.items, b.items)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_k_larger_than_catalog_pads(self, rng):
        backend = MatrixBackend(rng.standard_normal((4, 3)),
                                rng.standard_normal((6, 3)))
        result = ApproxRetriever(backend, nprobe=10).retrieve([0], k=50)
        assert result.items.shape == (1, 6)

    def test_low_nprobe_pads_when_lists_run_dry(self, rng):
        # 2 items in ~2 lists: probing one list cannot fill k=5
        backend = MatrixBackend(rng.standard_normal((3, 4)),
                                rng.standard_normal((2, 4)))
        index = IVFIndex(backend.item_matrix, num_lists=2)
        result = ApproxRetriever(backend, index, nprobe=1).retrieve([0], k=5)
        valid = result.items[0] >= 0
        assert np.all(np.isfinite(result.scores[0][valid]))
        assert np.all(result.items[0][~valid] == -1)
        assert np.all(np.isneginf(result.scores[0][~valid]))

    def test_single_user_int(self, tables):
        backend = MatrixBackend(*tables)
        result = ApproxRetriever(backend).retrieve(3, k=4)
        assert result.items.shape == (1, 4)

    def test_validation(self, tables, rng):
        backend = MatrixBackend(*tables)

        class Dot:
            num_users, num_items = 40, 120

            def score(self, users, items):
                return np.zeros(len(users))

        with pytest.raises(ValueError, match="matrix backend"):
            ApproxRetriever(ScorerBackend(Dot()))
        with pytest.raises(ValueError, match="covers"):
            ApproxRetriever(backend,
                            IVFIndex(rng.standard_normal((7, 8)), num_lists=2))
        with pytest.raises(ValueError, match="batch_users"):
            ApproxRetriever(backend, batch_users=0)
        with pytest.raises(ValueError, match="nprobe"):
            ApproxRetriever(backend, nprobe=0)
        with pytest.raises(ValueError, match="shortlist_k"):
            ApproxRetriever(backend, shortlist_k=0)
        with pytest.raises(ValueError, match="k must be positive"):
            ApproxRetriever(backend).retrieve([0], k=0)

    def test_shortlist_k_floor_is_k(self, tables):
        """An undersized shortlist still returns k items."""
        backend = MatrixBackend(*tables)
        approx = ApproxRetriever(backend, nprobe=10**9, shortlist_k=1)
        assert np.all(approx.retrieve([0, 1], k=7).items >= 0)

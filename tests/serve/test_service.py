"""Tests of the RecommendationService facade and Recommender.recommend_topk."""

import numpy as np
import pytest

from repro.core import GNMR, GNMRConfig
from repro.data import leave_one_out_split
from repro.models import BiasMF
from repro.serve import RecommendationService


@pytest.fixture(scope="module")
def split(small_taobao):
    return leave_one_out_split(small_taobao)


@pytest.fixture(scope="module")
def gnmr(split):
    return GNMR(split.train, GNMRConfig(pretrain=False, seed=0))


class TestRecommend:
    def test_excludes_training_positives(self, gnmr, split):
        service = RecommendationService(gnmr, train=split.train)
        result = service.recommend(np.arange(split.train.num_users), k=10)
        for row, user in enumerate(result.users):
            seen = set(split.train.user_target_items(int(user)).tolist())
            assert not (set(result.items[row].tolist()) & seen)

    def test_matches_legacy_recommend(self, gnmr, split):
        """The batched path agrees with the per-user brute-force API."""
        service = RecommendationService(gnmr, train=None, dtype=None,
                                        exclude=None)
        result = service.recommend(np.array([0, 5]), k=5)
        for row, user in enumerate(result.users):
            legacy = gnmr.recommend(int(user), top_n=5)
            assert [item for item, _ in legacy] == result.items[row].tolist()

    def test_score_candidates_matches_model(self, gnmr, split):
        service = RecommendationService(gnmr, train=split.train, dtype=None)
        users = np.array([2, 4, 6])
        items = np.array([1, 3, 5])
        np.testing.assert_allclose(service.score_candidates(users, items),
                                   gnmr.score(users, items))

    def test_brute_force_fallback(self, split):
        model = BiasMF(split.train.num_users, split.train.num_items, seed=0)
        service = RecommendationService(model, train=split.train)
        assert service.store is None
        result = service.recommend(np.array([0, 1]), k=4)
        assert result.items.shape == (2, 4)
        for row, user in enumerate(result.users):
            seen = set(split.train.user_target_items(int(user)).tolist())
            assert not (set(result.items[row].tolist()) & seen)


class TestReload:
    def test_auto_refresh_on_version_bump(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=4))
        service = RecommendationService(model, train=split.train)
        v0 = service.snapshot_version
        before = service.recommend(np.array([0]), k=5).scores.copy()
        model.user_embeddings.data *= -1.0  # drastic "training" change
        model.on_step_end()
        after = service.recommend(np.array([0]), k=5).scores
        assert service.snapshot_version == model.engine.version != v0
        assert not np.allclose(before, after)

    def test_manual_warm_and_cold_reload(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=5))
        service = RecommendationService(model, train=split.train,
                                        auto_refresh=False)
        model.user_embeddings.data += 1.0
        model.on_step_end()
        assert service.store.is_stale(model)
        assert service.reload() is True           # warm
        assert not service.store.is_stale(model)
        assert service.reload(cold=True) is True  # cold rebuilds everything
        assert service.retriever.exclude is service.exclusions


class TestApproxServing:
    def test_ivf_matches_exact_when_exhaustive(self, gnmr, split):
        exact = RecommendationService(gnmr, train=split.train)
        num_lists = exact.store.ann_index().num_lists
        ivf = RecommendationService(gnmr, train=split.train,
                                    retriever="ivf",
                                    ann={"nprobe": num_lists})
        users = np.arange(split.train.num_users)
        a = ivf.recommend(users, k=10)
        b = exact.recommend(users, k=10)
        np.testing.assert_array_equal(a.items, b.items)

    def test_ivf_excludes_training_positives(self, gnmr, split):
        service = RecommendationService(gnmr, train=split.train,
                                        retriever="ivf",
                                        ann={"nprobe": 2, "quant": "int8"})
        result = service.recommend(np.arange(split.train.num_users), k=10)
        for row, user in enumerate(result.users):
            seen = set(split.train.user_target_items(int(user)).tolist())
            assert not (set(result.items[row].tolist()) & seen)

    def test_ivf_index_follows_snapshot(self, split):
        model = GNMR(split.train, GNMRConfig(pretrain=False, seed=6))
        service = RecommendationService(model, train=split.train,
                                        retriever="ivf")
        index_before = service.retriever.index
        model.user_embeddings.data *= -1.0
        model.on_step_end()
        service.recommend(np.array([0]), k=5)  # auto-refresh
        assert service.retriever.index is not index_before
        assert service.snapshot_version == model.engine.version

    def test_ivf_needs_factored_model(self, split):
        model = BiasMF(split.train.num_users, split.train.num_items, seed=0)
        with pytest.raises(ValueError, match="factored"):
            RecommendationService(model, train=split.train, retriever="ivf")

    def test_unknown_retriever_rejected(self, gnmr, split):
        with pytest.raises(ValueError, match="unknown retriever"):
            RecommendationService(gnmr, train=split.train, retriever="hnsw")


class TestRecommendTopK:
    def test_gnmr_api(self, gnmr, split):
        result = gnmr.recommend_topk(np.arange(6), k=3, train=split.train)
        assert result.items.shape == (6, 3)
        assert (result.items >= 0).all()

    def test_baseline_api(self, split):
        model = BiasMF(split.train.num_users, split.train.num_items, seed=1)
        result = model.recommend_topk(0, k=3)
        legacy = model.recommend(0, top_n=3)
        assert result.items[0].tolist() == [item for item, _ in legacy]

"""Tests of the versioned embedding snapshot store."""

import numpy as np
import pytest

from repro.core import GNMR, GNMRConfig
from repro.models import BiasMF, NGCF
from repro.serve import EmbeddingStore, model_version


@pytest.fixture(scope="module")
def gnmr(small_taobao):
    return GNMR(small_taobao, GNMRConfig(pretrain=False, seed=0))


class TestSnapshot:
    def test_gnmr_snapshot_reproduces_score(self, gnmr):
        store = EmbeddingStore.snapshot(gnmr, dtype=None)
        users = np.array([0, 3, 9])
        items = np.array([5, 2, 7])
        np.testing.assert_allclose(store.score(users, items),
                                   gnmr.score(users, items))

    def test_ngcf_snapshot_reproduces_score(self, small_taobao):
        model = NGCF(small_taobao, seed=0)
        store = EmbeddingStore.snapshot(model, dtype=None)
        users = np.array([1, 2])
        items = np.array([3, 4])
        np.testing.assert_allclose(store.score(users, items),
                                   model.score(users, items))

    def test_default_dtype_is_float32(self, gnmr):
        store = EmbeddingStore.snapshot(gnmr)
        assert store.user_matrix.dtype == np.float32
        assert store.item_matrix.dtype == np.float32
        assert store.num_users == gnmr.num_users
        assert store.num_items == gnmr.num_items

    def test_unfactored_model_yields_none(self, small_taobao):
        model = BiasMF(small_taobao.num_users, small_taobao.num_items, seed=0)
        assert model.serving_embeddings() is None
        assert EmbeddingStore.snapshot(model) is None
        assert model_version(model) is None


class TestInvalidation:
    def test_fresh_snapshot_not_stale(self, gnmr):
        store = EmbeddingStore.snapshot(gnmr)
        assert store.version == gnmr.engine.version
        assert not store.is_stale(gnmr)

    def test_engine_bump_marks_stale(self, small_taobao):
        model = GNMR(small_taobao, GNMRConfig(pretrain=False, seed=1))
        store = EmbeddingStore.snapshot(model)
        model.on_step_end()  # what the trainer calls after each step
        assert store.is_stale(model)

    def test_refresh_catches_up(self, small_taobao):
        model = GNMR(small_taobao, GNMRConfig(pretrain=False, seed=2))
        store = EmbeddingStore.snapshot(model)
        before = store.user_matrix.copy()
        model.user_embeddings.data += 0.5  # "training step"
        model.on_step_end()
        assert store.refresh(model) is True
        assert store.version == model.engine.version
        assert not store.is_stale(model)
        assert not np.allclose(store.user_matrix, before)

    def test_refresh_noop_when_fresh(self, small_taobao):
        model = GNMR(small_taobao, GNMRConfig(pretrain=False, seed=3))
        store = EmbeddingStore.snapshot(model)
        assert store.refresh(model) is False
        assert store.refresh(model, force=True) is True


class TestAnnIndexLifecycle:
    def test_same_config_reuses_index(self, gnmr):
        store = EmbeddingStore.snapshot(gnmr)
        assert store.ann_index(quant="int8") is store.ann_index(quant="int8")

    def test_distinct_configs_get_distinct_indexes(self, gnmr):
        store = EmbeddingStore.snapshot(gnmr)
        assert store.ann_index(quant="int8") is not store.ann_index()
        assert store.ann_index(seed=1) is not store.ann_index(seed=0)

    def test_refresh_invalidates_indexes(self, small_taobao):
        model = GNMR(small_taobao, GNMRConfig(pretrain=False, seed=8))
        store = EmbeddingStore.snapshot(model)
        stale_index = store.ann_index()
        model.item_embeddings.data += 0.5
        model.on_step_end()
        store.refresh(model)
        fresh_index = store.ann_index()
        assert fresh_index is not stale_index
        np.testing.assert_array_equal(fresh_index.item_matrix,
                                      store.item_matrix)

    def test_index_covers_snapshot_catalog(self, gnmr):
        store = EmbeddingStore.snapshot(gnmr)
        index = store.ann_index(num_lists=4)
        assert index.num_items == store.num_items
        assert index.num_lists == 4


class TestSnapshotIntegrity:
    def test_content_hash_recorded_and_stable(self, gnmr):
        from repro.serve import SnapshotIntegrityError

        store = EmbeddingStore.snapshot(gnmr)
        assert store.verify() == store.content_hash
        again = EmbeddingStore.snapshot(gnmr)
        assert again.content_hash == store.content_hash
        store.user_matrix[0, 0] += 1.0  # in-place mutation is detected
        with pytest.raises(SnapshotIntegrityError):
            store.verify()

    def test_refresh_rebuilds_hash(self, small_taobao):
        model = GNMR(small_taobao, GNMRConfig(pretrain=False, seed=4))
        store = EmbeddingStore.snapshot(model)
        first = store.content_hash
        model.user_embeddings.data += 0.01
        model.on_step_end()
        assert store.refresh(model)
        assert store.content_hash != first
        store.verify()

    def test_from_shards_verifies_expected_hash(self, gnmr):
        from repro.serve import SnapshotIntegrityError
        from repro.shard import ShardSpec

        reference = EmbeddingStore.snapshot(gnmr)
        user_spec = ShardSpec(reference.num_users, 2)
        item_spec = ShardSpec(reference.num_items, 3)
        user_shards = [reference.user_matrix[rows]
                       for rows in map(user_spec.shard_rows, range(2))]
        item_shards = [reference.item_matrix[rows]
                       for rows in map(item_spec.shard_rows, range(3))]
        store = EmbeddingStore.from_shards(
            user_shards, item_shards, user_spec=user_spec,
            item_spec=item_spec, dtype=None,
            expected_hash=reference.content_hash)
        assert store.content_hash == reference.content_hash
        # a reordered shard list must fail assembly verification
        with pytest.raises(SnapshotIntegrityError):
            EmbeddingStore.from_shards(
                list(reversed(user_shards)), item_shards,
                user_spec=user_spec, item_spec=item_spec, dtype=None,
                expected_hash=reference.content_hash)

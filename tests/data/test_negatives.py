"""Tests of evaluation-candidate generation (1 + 99 protocol)."""

import numpy as np
import pytest

from repro.data import build_eval_candidates, leave_one_out_split


@pytest.fixture(scope="module")
def split_and_candidates():
    from repro.data import taobao_like

    data = taobao_like(num_users=40, num_items=120, seed=21)
    split = leave_one_out_split(data)
    candidates = build_eval_candidates(split.train, split.test_users,
                                       split.test_items, num_negatives=30,
                                       rng=np.random.default_rng(0))
    return split, candidates


class TestCandidates:
    def test_shape(self, split_and_candidates):
        split, candidates = split_and_candidates
        assert candidates.items.shape == (len(split.test_users), 31)
        assert candidates.num_negatives == 30
        assert len(candidates) == len(split.test_users)

    def test_positive_in_column_zero(self, split_and_candidates):
        split, candidates = split_and_candidates
        np.testing.assert_array_equal(candidates.items[:, 0], split.test_items)

    def test_negatives_unique_per_row(self, split_and_candidates):
        _, candidates = split_and_candidates
        for row in candidates.items:
            assert len(set(row.tolist())) == len(row)

    def test_negatives_never_training_positives(self, split_and_candidates):
        split, candidates = split_and_candidates
        for user, row in zip(candidates.users, candidates.items):
            train_items = set(split.train.user_target_items(int(user)).tolist())
            assert not (set(row[1:].tolist()) & train_items)

    def test_deterministic_with_seed(self, split_and_candidates):
        split, _ = split_and_candidates
        a = build_eval_candidates(split.train, split.test_users, split.test_items,
                                  num_negatives=10, rng=np.random.default_rng(5))
        b = build_eval_candidates(split.train, split.test_users, split.test_items,
                                  num_negatives=10, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.items, b.items)

    def test_too_many_negatives_rejected(self, split_and_candidates):
        split, _ = split_and_candidates
        with pytest.raises(ValueError):
            build_eval_candidates(split.train, split.test_users, split.test_items,
                                  num_negatives=10_000)

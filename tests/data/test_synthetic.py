"""Tests of the synthetic dataset generators and their guarantees."""

import numpy as np
import pytest

from repro.data import (
    SyntheticConfig,
    generate_multi_behavior_dataset,
    movielens_like,
    taobao_like,
    yelp_like,
)


class TestGenericGenerator:
    def test_requires_specs(self):
        with pytest.raises(ValueError):
            generate_multi_behavior_dataset(SyntheticConfig())

    def test_target_must_be_in_specs(self):
        cfg = SyntheticConfig(behavior_specs={"view": (0.5, 5)}, target_behavior="buy")
        with pytest.raises(ValueError):
            generate_multi_behavior_dataset(cfg)

    def test_shapes_and_ranges(self):
        cfg = SyntheticConfig(
            num_users=30, num_items=40,
            behavior_specs={"view": (0.3, 8.0), "like": (0.9, 3.0)},
            target_behavior="like", seed=5,
        )
        data = generate_multi_behavior_dataset(cfg)
        assert data.num_users == 30 and data.num_items == 40
        for behavior in ("view", "like"):
            users, items, _ = data.arrays(behavior)
            assert users.min() >= 0 and users.max() < 30
            assert items.min() >= 0 and items.max() < 40

    def test_deterministic(self):
        cfg = SyntheticConfig(num_users=20, num_items=30,
                              behavior_specs={"like": (0.9, 4.0)},
                              target_behavior="like", seed=9)
        a = generate_multi_behavior_dataset(cfg)
        b = generate_multi_behavior_dataset(cfg)
        np.testing.assert_array_equal(a.arrays("like")[0], b.arrays("like")[0])
        np.testing.assert_array_equal(a.arrays("like")[1], b.arrays("like")[1])


class TestMovieLensLike:
    def test_schema(self):
        data = movielens_like(num_users=30, num_items=50, seed=1)
        assert data.behavior_names == ("dislike", "neutral", "like")
        assert data.target_behavior == "like"

    def test_every_user_has_ratings(self):
        data = movielens_like(num_users=30, num_items=50, seed=1)
        total = np.zeros(30)
        for behavior in data.behavior_names:
            users, _, _ = data.arrays(behavior)
            np.add.at(total, users, 1)
        assert (total >= 2).all()

    def test_like_is_plurality_behavior(self):
        """The affinity-driven sampling makes liked items the most common."""
        data = movielens_like(num_users=60, num_items=80, seed=2)
        counts = {b: data.interaction_count(b) for b in data.behavior_names}
        assert counts["like"] > counts["dislike"]


class TestYelpLike:
    def test_schema(self):
        data = yelp_like(num_users=30, num_items=50, seed=1)
        assert data.behavior_names == ("tip", "dislike", "neutral", "like")
        assert data.target_behavior == "like"

    def test_has_tips(self):
        data = yelp_like(num_users=40, num_items=60, seed=3)
        assert data.interaction_count("tip") > 0


class TestTaobaoLike:
    def test_schema(self):
        data = taobao_like(num_users=30, num_items=50, seed=1)
        assert data.behavior_names == ("page_view", "favorite", "cart", "purchase")
        assert data.target_behavior == "purchase"

    def test_funnel_shape(self):
        """Views ≫ carts ≥ purchases — the e-commerce funnel."""
        data = taobao_like(num_users=60, num_items=90, seed=4)
        views = data.interaction_count("page_view")
        carts = data.interaction_count("cart")
        purchases = data.interaction_count("purchase")
        assert views > carts
        assert views > purchases

    def test_every_user_purchases_at_least_twice(self):
        """Guaranteed so leave-one-out always keeps a training edge."""
        data = taobao_like(num_users=50, num_items=70, seed=5)
        users, _, _ = data.arrays("purchase")
        counts = np.bincount(users, minlength=50)
        assert (counts >= 2).all()

    def test_purchase_mix_of_funnel_and_direct(self):
        """Purchases mix funnel buys (viewed first) with direct buys that
        leave no view trace — neither path should dominate completely."""
        data = taobao_like(num_users=60, num_items=120, seed=6)
        graph = data.graph()
        users, items, _ = data.arrays("purchase")
        viewed = sum(
            graph.has_edge("page_view", int(u), int(i)) for u, i in zip(users, items)
        )
        share = viewed / users.size
        assert 0.15 < share < 0.9

    def test_direct_fraction_knob(self):
        """More direct purchases → smaller viewed-first share."""
        def viewed_share(direct_fraction):
            data = taobao_like(num_users=50, num_items=100, seed=6,
                               direct_purchase_fraction=direct_fraction)
            graph = data.graph()
            users, items, _ = data.arrays("purchase")
            hits = sum(graph.has_edge("page_view", int(u), int(i))
                       for u, i in zip(users, items))
            return hits / users.size

        assert viewed_share(0.2) > viewed_share(0.9)

    def test_timestamps_in_range(self):
        data = taobao_like(num_users=20, num_items=40, seed=7)
        for behavior in data.behavior_names:
            _, _, timestamps = data.arrays(behavior)
            assert timestamps.min() >= 0.0
            assert timestamps.max() <= 1.5


class TestBehaviorCorrelation:
    def test_auxiliary_behaviors_carry_signal(self):
        """Items a user favorites overlap their purchases more than chance."""
        data = taobao_like(num_users=80, num_items=100, seed=8)
        graph = data.graph()
        fav = graph.adjacency("favorite").to_dense()
        buy = graph.adjacency("purchase").to_dense()
        overlap = (fav * buy).sum() / buy.sum()
        # chance level would be fav density ≈ fav.mean()
        assert overlap > 3 * fav.mean()

"""Tests of the scenario registry."""

import numpy as np
import pytest

from repro.data import (
    SCENARIOS,
    build_scenario,
    get_scenario,
    list_scenarios,
    resolve_scenario,
    save_dataset_npz,
    taobao_like,
)


class TestRegistry:
    def test_expected_scenarios_present(self):
        names = list_scenarios()
        for expected in ("tmall-like", "taobao-like", "movielens-10m-like",
                         "yelp-like", "gowalla-like"):
            assert expected in names

    def test_unknown_scenario_names_options(self):
        with pytest.raises(ValueError, match="tmall-like"):
            get_scenario("nope")

    def test_specs_are_consistent(self):
        for name, spec in SCENARIOS.items():
            assert spec.name == name
            assert spec.target_behavior in spec.behavior_names
            assert spec.default_users > 0 and spec.default_items > 0
            assert spec.skew
            row = spec.describe()
            assert spec.target_behavior in row["target"]

    def test_build_matches_spec(self):
        for name, spec in SCENARIOS.items():
            dataset = build_scenario(name, num_users=30, num_items=50, seed=1)
            assert dataset.num_users == 30
            assert dataset.num_items == 50
            assert dataset.behavior_names == spec.behavior_names
            assert dataset.target_behavior == spec.target_behavior
            assert dataset.interaction_count() > 0

    def test_build_deterministic(self):
        a = build_scenario("tmall-like", num_users=20, num_items=40, seed=7)
        b = build_scenario("tmall-like", num_users=20, num_items=40, seed=7)
        for behavior in a.behavior_names:
            for left, right in zip(a.arrays(behavior), b.arrays(behavior)):
                np.testing.assert_array_equal(left, right)


class TestShapes:
    def test_tmall_funnel_densities(self):
        """Clicks dominate; buys are the sparsest funnel stage."""
        data = build_scenario("tmall-like", num_users=60, num_items=120)
        clicks = data.interaction_count("click")
        buys = data.interaction_count("buy")
        assert clicks > 4 * buys
        assert buys >= 60  # every user buys at least once

    def test_gowalla_single_behavior_long_tail(self):
        data = build_scenario("gowalla-like", num_users=80, num_items=160)
        assert data.behavior_names == ("checkin",)
        degrees = data.graph().item_degree("checkin")
        top = np.sort(degrees)[::-1]
        # heavy head: top 10% of venues take a disproportionate share
        head = top[: max(1, len(top) // 10)].sum()
        assert head > 0.2 * degrees.sum()


class TestResolve:
    def test_resolve_registry_name(self):
        data = resolve_scenario("gowalla-like", num_users=25, num_items=50)
        assert data.num_users == 25

    def test_resolve_artifact_path(self, tmp_path):
        source = taobao_like(num_users=15, num_items=30, seed=2)
        path = save_dataset_npz(source, tmp_path / "t.npz")
        loaded = resolve_scenario(str(path))
        assert loaded.num_users == source.num_users
        assert loaded.behavior_names == source.behavior_names

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            resolve_scenario("missing-thing")

    def test_resolve_missing_npz_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resolve_scenario(str(tmp_path / "absent.npz"))


class TestExperimentIntegration:
    def test_dataset_by_name_resolves_scenarios(self):
        from repro.experiments import TINY_SCALE, dataset_by_name

        data = dataset_by_name("tmall-like", TINY_SCALE)
        assert data.num_users == TINY_SCALE.num_users
        assert data.target_behavior == "buy"

    def test_dataset_by_name_unknown_lists_both_catalogs(self):
        from repro.experiments import TINY_SCALE, dataset_by_name

        with pytest.raises(ValueError, match="gowalla-like"):
            dataset_by_name("nope", TINY_SCALE)

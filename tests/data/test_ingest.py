"""Tests of the streaming, memory-bounded ingestion pipeline."""

import json
import zipfile

import numpy as np
import pytest

from repro.data import (
    BadRowError,
    IngestOptions,
    ingest_csv,
    iter_event_chunks,
    load_dataset_npz,
    load_interactions_csv,
    save_dataset_npz,
    taobao_like,
    temporal_split,
)
from repro.data.ingest import IngestReport


def _write_log(path, rows, header="user,item,behavior,timestamp"):
    lines = ([header] if header else []) + rows
    path.write_text("\n".join(lines) + "\n")
    return path


def _random_log_rows(num_rows, num_users=25, num_items=60, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(num_rows):
        behavior = ["click", "click", "cart", "buy"][rng.integers(0, 4)]
        rows.append(f"u{rng.integers(0, num_users)},"
                    f"i{rng.integers(0, num_items)},"
                    f"{behavior},{rng.integers(1, 100_000)}")
    return rows


class TestIterEventChunks:
    def test_chunk_sizes_bounded(self, tmp_path):
        path = _write_log(tmp_path / "log.csv", _random_log_rows(257))
        options = IngestOptions(chunk_rows=50)
        report = IngestReport()
        chunks = list(iter_event_chunks(path, options, report))
        assert [len(c) for c in chunks] == [50] * 5 + [7]
        assert report.chunks == 6
        assert report.rows_read == 257

    def test_rating_mode_maps_behaviors(self, tmp_path):
        path = _write_log(tmp_path / "ml.csv",
                          ["a,x,5,1", "a,y,1,2", "b,x,3,3"],
                          header="user,item,rating,timestamp")
        options = IngestOptions(behavior_col=None, rating_col="rating",
                                chunk_rows=2)
        (chunk1, chunk2) = list(iter_event_chunks(path, options))
        behaviors = [row[2] for row in chunk1 + chunk2]
        assert behaviors == ["like", "dislike", "neutral"]

    def test_bad_rows_raise_by_default(self, tmp_path):
        path = _write_log(tmp_path / "bad.csv",
                          ["a,x,5,1", "a,y,nan,2"],
                          header="user,item,rating,timestamp")
        options = IngestOptions(behavior_col=None, rating_col="rating")
        with pytest.raises(BadRowError, match="row 2"):
            list(iter_event_chunks(path, options))

    def test_bad_rows_skip_counts(self, tmp_path):
        path = _write_log(tmp_path / "bad.csv",
                          ["a,x,5,1", "a,y,nan,2", "b,x,oops,3", "b,y,4,4"],
                          header="user,item,rating,timestamp")
        options = IngestOptions(behavior_col=None, rating_col="rating",
                                on_bad_rows="skip")
        report = IngestReport()
        rows = [row for chunk in iter_event_chunks(path, options, report)
                for row in chunk]
        assert len(rows) == 2
        assert report.rows_dropped_bad == 2
        assert len(report.bad_row_examples) == 2


class TestIngestCsv:
    def test_matches_in_memory_loader(self, tmp_path):
        """Chunked two-pass ingest == whole-file loader, chunk by chunk."""
        path = _write_log(tmp_path / "log.csv", _random_log_rows(500))
        reference = load_interactions_csv(path, name="ref",
                                          target_behavior="buy")
        for chunk_rows in (7, 64, 10_000):
            dataset, report = ingest_csv(path, name="ref",
                                         target_behavior="buy",
                                         chunk_rows=chunk_rows)
            assert dataset.num_users == reference.num_users
            assert dataset.num_items == reference.num_items
            assert dataset.behavior_names == reference.behavior_names
            for behavior in reference.behavior_names:
                for got, want in zip(dataset.arrays(behavior),
                                     reference.arrays(behavior)):
                    np.testing.assert_array_equal(got, want)
            assert report.rows_kept == 500

    def test_behavior_filter_no_phantom_ids(self, tmp_path):
        path = _write_log(tmp_path / "log.csv", [
            "u1,i1,click,1",
            "u1,i2,buy,2",
            "ghost_user,ghost_item,weird,3",
            "u2,i2,buy,4",
        ])
        dataset, report = ingest_csv(path, name="f", target_behavior="buy",
                                     behavior_names=("click", "buy"))
        assert dataset.num_users == 2
        assert dataset.num_items == 2
        assert report.rows_dropped_behavior == 1
        assert report.rows_kept == 3

    def test_missing_target_raises(self, tmp_path):
        path = _write_log(tmp_path / "log.csv", ["u1,i1,click,1"])
        with pytest.raises(ValueError, match="target behavior"):
            ingest_csv(path, name="x", target_behavior="buy")

    def test_headerless_positional(self, tmp_path):
        path = _write_log(tmp_path / "log.csv",
                          ["u1,i1,buy,1", "u1,i2,buy,2", "u2,i1,click,3"],
                          header=None)
        dataset, _ = ingest_csv(path, name="p", target_behavior="buy",
                                has_header=False)
        assert dataset.interaction_count() == 3

    def test_timestampless_log_flagged(self, tmp_path):
        path = _write_log(tmp_path / "log.csv",
                          ["u1,i1,buy", "u1,i2,buy", "u2,i1,buy"],
                          header="user,item,behavior")
        dataset, report = ingest_csv(path, name="nt", target_behavior="buy")
        assert not report.has_timestamps
        with pytest.raises(ValueError, match="timestamps"):
            temporal_split(dataset)

    def test_option_conflict_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ingest_csv(tmp_path / "log.csv", name="x", target_behavior="buy",
                       options=IngestOptions(), chunk_rows=5)
        with pytest.raises(ValueError):
            IngestOptions(behavior_col=None, rating_col=None)
        with pytest.raises(ValueError):
            IngestOptions(on_bad_rows="ignore")
        with pytest.raises(ValueError):
            IngestOptions(chunk_rows=0)


class TestDatasetArtifact:
    def test_roundtrip(self, tmp_path):
        dataset = taobao_like(num_users=20, num_items=35, seed=3)
        path = save_dataset_npz(dataset, tmp_path / "d.npz")
        loaded, meta = load_dataset_npz(path)
        assert loaded.name == dataset.name
        assert loaded.num_users == dataset.num_users
        assert loaded.num_items == dataset.num_items
        assert loaded.behavior_names == dataset.behavior_names
        assert loaded.target_behavior == dataset.target_behavior
        assert meta["has_timestamps"] is True
        for behavior in dataset.behavior_names:
            for got, want in zip(loaded.arrays(behavior),
                                 dataset.arrays(behavior)):
                np.testing.assert_array_equal(got, want)

    def test_bytes_deterministic(self, tmp_path):
        dataset = taobao_like(num_users=15, num_items=25, seed=5)
        a = save_dataset_npz(dataset, tmp_path / "a.npz")
        b = save_dataset_npz(dataset, tmp_path / "b.npz")
        assert a.read_bytes() == b.read_bytes()

    def test_rejects_foreign_zip(self, tmp_path):
        path = tmp_path / "not_dataset.npz"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("whatever.npy", b"junk")
        with pytest.raises(ValueError, match="artifact"):
            load_dataset_npz(path)

    def test_rejects_bad_format_version(self, tmp_path):
        path = tmp_path / "old.npz"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("meta.json", json.dumps({"format": "v0"}))
        with pytest.raises(ValueError, match="format"):
            load_dataset_npz(path)


class TestIngestTransientMemory:
    def test_transient_memory_bounded_by_chunk(self, tmp_path):
        """10x more rows must not mean 10x more transient memory.

        Transient = tracemalloc peak minus what remains allocated at the
        end (the dataset itself): the chunked two-pass design keeps it
        proportional to the chunk and the vocabularies, never the log.
        """
        import tracemalloc

        small = _write_log(tmp_path / "small.csv",
                           _random_log_rows(600, seed=1))
        big = _write_log(tmp_path / "big.csv",
                         _random_log_rows(6000, seed=2))

        def transient(path):
            tracemalloc.start()
            try:
                ingest_csv(path, name="m", target_behavior="buy",
                           chunk_rows=500)
                current, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            return peak - current

        small_transient = transient(small)
        big_transient = transient(big)
        assert big_transient < small_transient * 3, (
            f"transient memory grew with the log: {small_transient} -> "
            f"{big_transient} bytes for 10x the rows")

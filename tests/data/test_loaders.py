"""Tests of the file loaders and the paper's rating→behavior mapping."""

import numpy as np
import pytest

from repro.data import (
    BadRowError,
    load_interactions_csv,
    load_interactions_csv_with_report,
    map_ratings_to_behaviors,
)


class TestRatingMapping:
    def test_paper_thresholds(self):
        """§IV-A: r ≤ 2 dislike, 2 < r < 4 neutral, r ≥ 4 like."""
        out = map_ratings_to_behaviors(np.array([0.5, 2.0, 2.5, 3.9, 4.0, 5.0]))
        assert list(out) == ["dislike", "dislike", "neutral", "neutral", "like", "like"]

    def test_boundaries_exact(self):
        assert map_ratings_to_behaviors(np.array([2.0]))[0] == "dislike"
        assert map_ratings_to_behaviors(np.array([4.0]))[0] == "like"


class TestCsvLoader:
    def test_behavior_column_mode(self, tmp_path):
        path = tmp_path / "taobao.csv"
        path.write_text(
            "user,item,behavior,timestamp\n"
            "u1,i1,view,1\n"
            "u1,i2,buy,2\n"
            "u2,i1,buy,3\n"
            "u1,i1,buy,4\n"
        )
        data = load_interactions_csv(path, name="t", target_behavior="buy")
        assert data.num_users == 2 and data.num_items == 2
        assert data.behavior_names == ("view", "buy")
        assert data.interaction_count("buy") == 3
        # dense reindexing in first-seen order: u1→0, i1→0
        users, items, timestamps = data.arrays("view")
        assert users[0] == 0 and items[0] == 0 and timestamps[0] == 1.0

    def test_rating_column_mode(self, tmp_path):
        path = tmp_path / "ml.csv"
        path.write_text(
            "user,item,rating,timestamp\n"
            "a,x,5,10\n"
            "a,y,1,11\n"
            "b,x,3,12\n"
        )
        data = load_interactions_csv(path, name="ml", target_behavior="like",
                                     behavior_col=None, rating_col="rating")
        assert set(data.behavior_names) == {"like", "dislike", "neutral"}
        assert data.interaction_count("like") == 1
        assert data.interaction_count("dislike") == 1
        assert data.interaction_count("neutral") == 1

    def test_headerless_positional(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("u1,i1,view,1\nu1,i2,buy,2\nu2,i2,buy,5\n")
        data = load_interactions_csv(path, name="p", target_behavior="buy",
                                     has_header=False)
        assert data.interaction_count() == 3

    def test_explicit_behavior_filter(self, tmp_path):
        path = tmp_path / "f.csv"
        path.write_text(
            "user,item,behavior\nu1,i1,view\nu1,i2,buy\nu2,i1,weird\nu2,i2,buy\n")
        data = load_interactions_csv(path, name="f", target_behavior="buy",
                                     behavior_names=("view", "buy"),
                                     timestamp_col=None)
        assert data.behavior_names == ("view", "buy")
        assert data.interaction_count() == 3  # 'weird' row dropped

    def test_mode_exclusivity(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("user,item,behavior\n")
        with pytest.raises(ValueError):
            load_interactions_csv(path, name="x", target_behavior="buy",
                                  behavior_col="behavior", rating_col="rating")
        with pytest.raises(ValueError):
            load_interactions_csv(path, name="x", target_behavior="buy",
                                  behavior_col=None, rating_col=None)

    def test_missing_target_raises(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("user,item,behavior\nu1,i1,view\n")
        with pytest.raises(ValueError):
            load_interactions_csv(path, name="m", target_behavior="buy")

    def test_roundtrip_into_pipeline(self, tmp_path):
        """A loaded dataset drives the graph/split machinery end to end."""
        rows = ["user,item,behavior,timestamp"]
        rng = np.random.default_rng(0)
        for u in range(12):
            for _ in range(4):
                rows.append(f"u{u},i{rng.integers(0, 15)},view,{rng.random()}")
            for _ in range(3):
                rows.append(f"u{u},i{rng.integers(0, 15)},buy,{rng.random()}")
        path = tmp_path / "rt.csv"
        path.write_text("\n".join(rows) + "\n")
        data = load_interactions_csv(path, name="rt", target_behavior="buy",
                                     behavior_names=("view", "buy"))
        graph = data.graph()
        assert graph.num_behaviors == 2
        from repro.data import leave_one_out_split

        split = leave_one_out_split(data)
        assert len(split) > 0


class TestBadRowPolicy:
    """NaN/garbage ratings must never silently become 'neutral'."""

    def test_nan_rating_raises_with_row_number(self, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text("user,item,rating\na,x,5\nb,y,nan\n")
        with pytest.raises(BadRowError, match="row 2"):
            load_interactions_csv(path, name="n", target_behavior="like",
                                  behavior_col=None, rating_col="rating",
                                  timestamp_col=None)

    def test_garbage_rating_raises(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("user,item,rating\na,x,five\n")
        with pytest.raises(BadRowError):
            load_interactions_csv(path, name="g", target_behavior="like",
                                  behavior_col=None, rating_col="rating",
                                  timestamp_col=None)

    def test_skip_mode_counts_drops(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text(
            "user,item,rating\na,x,5\nb,y,nan\nc,z,inf\na,y,1\n")
        data, report = load_interactions_csv_with_report(
            path, name="s", target_behavior="like", behavior_col=None,
            rating_col="rating", timestamp_col=None, on_bad_rows="skip")
        assert data.interaction_count() == 2
        assert report.rows_dropped_bad == 2
        assert report.rows_read == 4
        assert len(report.bad_row_examples) == 2
        assert "row 2" in str(report.bad_row_examples[0])

    def test_missing_required_column_raises(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("user,item,behavior\nu1,,buy\n")
        with pytest.raises(BadRowError, match="row 1"):
            load_interactions_csv(path, name="m", target_behavior="buy",
                                  timestamp_col=None)

    def test_bad_policy_value_rejected(self, tmp_path):
        path = tmp_path / "p.csv"
        path.write_text("user,item,behavior\nu1,i1,buy\n")
        with pytest.raises(ValueError, match="on_bad_rows"):
            load_interactions_csv(path, name="p", target_behavior="buy",
                                  timestamp_col=None, on_bad_rows="ignore")


class TestBehaviorFilterIndexing:
    """Pinned regression: indices are built AFTER behavior filtering, so
    rows dropped by the filter can't leave phantom users/items behind."""

    def test_no_phantom_users_or_items(self, tmp_path):
        path = tmp_path / "ph.csv"
        path.write_text(
            "user,item,behavior\n"
            "u1,i1,view\n"
            "ghost_user,ghost_item,weird\n"
            "u1,i2,buy\n"
            "u2,i1,buy\n")
        data = load_interactions_csv(path, name="ph", target_behavior="buy",
                                     behavior_names=("view", "buy"),
                                     timestamp_col=None)
        assert data.num_users == 2
        assert data.num_items == 2

    def test_filtered_drop_counts_reported(self, tmp_path):
        path = tmp_path / "fc.csv"
        path.write_text(
            "user,item,behavior\n"
            "u1,i1,view\nu1,i2,buy\nu2,i1,weird\nu3,i3,odd\nu2,i2,buy\n")
        data, report = load_interactions_csv_with_report(
            path, name="fc", target_behavior="buy",
            behavior_names=("view", "buy"), timestamp_col=None)
        assert report.rows_dropped_behavior == 2
        assert report.rows_kept == 3
        assert report.rows_read == 5
        summary = report.as_dict()
        assert summary["rows_dropped_behavior"] == 2

    def test_first_seen_order_respects_filter(self, tmp_path):
        """Dense ids follow first *surviving* appearance, not file order."""
        path = tmp_path / "fo.csv"
        path.write_text(
            "user,item,behavior\n"
            "zed,late,weird\n"   # filtered: must not claim id 0
            "abe,early,buy\n"
            "zed,late,buy\n")
        data = load_interactions_csv(path, name="fo", target_behavior="buy",
                                     behavior_names=("buy",),
                                     timestamp_col=None)
        users, items, _ = data.arrays("buy")
        assert users.tolist() == [0, 1]
        assert items.tolist() == [0, 1]

"""Tests of the file loaders and the paper's rating→behavior mapping."""

import numpy as np
import pytest

from repro.data import load_interactions_csv, map_ratings_to_behaviors


class TestRatingMapping:
    def test_paper_thresholds(self):
        """§IV-A: r ≤ 2 dislike, 2 < r < 4 neutral, r ≥ 4 like."""
        out = map_ratings_to_behaviors(np.array([0.5, 2.0, 2.5, 3.9, 4.0, 5.0]))
        assert list(out) == ["dislike", "dislike", "neutral", "neutral", "like", "like"]

    def test_boundaries_exact(self):
        assert map_ratings_to_behaviors(np.array([2.0]))[0] == "dislike"
        assert map_ratings_to_behaviors(np.array([4.0]))[0] == "like"


class TestCsvLoader:
    def test_behavior_column_mode(self, tmp_path):
        path = tmp_path / "taobao.csv"
        path.write_text(
            "user,item,behavior,timestamp\n"
            "u1,i1,view,1\n"
            "u1,i2,buy,2\n"
            "u2,i1,buy,3\n"
            "u1,i1,buy,4\n"
        )
        data = load_interactions_csv(path, name="t", target_behavior="buy")
        assert data.num_users == 2 and data.num_items == 2
        assert data.behavior_names == ("view", "buy")
        assert data.interaction_count("buy") == 3
        # dense reindexing in first-seen order: u1→0, i1→0
        users, items, timestamps = data.arrays("view")
        assert users[0] == 0 and items[0] == 0 and timestamps[0] == 1.0

    def test_rating_column_mode(self, tmp_path):
        path = tmp_path / "ml.csv"
        path.write_text(
            "user,item,rating,timestamp\n"
            "a,x,5,10\n"
            "a,y,1,11\n"
            "b,x,3,12\n"
        )
        data = load_interactions_csv(path, name="ml", target_behavior="like",
                                     behavior_col=None, rating_col="rating")
        assert set(data.behavior_names) == {"like", "dislike", "neutral"}
        assert data.interaction_count("like") == 1
        assert data.interaction_count("dislike") == 1
        assert data.interaction_count("neutral") == 1

    def test_headerless_positional(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("u1,i1,view,1\nu1,i2,buy,2\nu2,i2,buy,5\n")
        data = load_interactions_csv(path, name="p", target_behavior="buy",
                                     has_header=False)
        assert data.interaction_count() == 3

    def test_explicit_behavior_filter(self, tmp_path):
        path = tmp_path / "f.csv"
        path.write_text(
            "user,item,behavior\nu1,i1,view\nu1,i2,buy\nu2,i1,weird\nu2,i2,buy\n")
        data = load_interactions_csv(path, name="f", target_behavior="buy",
                                     behavior_names=("view", "buy"),
                                     timestamp_col=None)
        assert data.behavior_names == ("view", "buy")
        assert data.interaction_count() == 3  # 'weird' row dropped

    def test_mode_exclusivity(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("user,item,behavior\n")
        with pytest.raises(ValueError):
            load_interactions_csv(path, name="x", target_behavior="buy",
                                  behavior_col="behavior", rating_col="rating")
        with pytest.raises(ValueError):
            load_interactions_csv(path, name="x", target_behavior="buy",
                                  behavior_col=None, rating_col=None)

    def test_missing_target_raises(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("user,item,behavior\nu1,i1,view\n")
        with pytest.raises(ValueError):
            load_interactions_csv(path, name="m", target_behavior="buy")

    def test_roundtrip_into_pipeline(self, tmp_path):
        """A loaded dataset drives the graph/split machinery end to end."""
        rows = ["user,item,behavior,timestamp"]
        rng = np.random.default_rng(0)
        for u in range(12):
            for _ in range(4):
                rows.append(f"u{u},i{rng.integers(0, 15)},view,{rng.random()}")
            for _ in range(3):
                rows.append(f"u{u},i{rng.integers(0, 15)},buy,{rng.random()}")
        path = tmp_path / "rt.csv"
        path.write_text("\n".join(rows) + "\n")
        data = load_interactions_csv(path, name="rt", target_behavior="buy",
                                     behavior_names=("view", "buy"))
        graph = data.graph()
        assert graph.num_behaviors == 2
        from repro.data import leave_one_out_split

        split = leave_one_out_split(data)
        assert len(split) > 0

"""Tests of the leave-one-out split."""

import numpy as np
import pytest

from repro.data import leave_one_out_split


class TestLeaveOneOut:
    def test_held_out_removed_from_train(self, small_taobao):
        split = leave_one_out_split(small_taobao)
        for user, item in zip(split.test_users, split.test_items):
            assert item not in split.train.user_target_items(int(user))

    def test_one_test_item_per_user(self, small_taobao):
        split = leave_one_out_split(small_taobao)
        assert len(np.unique(split.test_users)) == len(split.test_users)

    def test_train_keeps_at_least_one_positive(self, small_taobao):
        split = leave_one_out_split(small_taobao)
        for user in split.test_users:
            assert split.train.user_target_items(int(user)).size >= 1

    def test_timestamps_pick_most_recent(self, tiny_dataset):
        split = leave_one_out_split(tiny_dataset, use_timestamps=True)
        # user 0 bought item 1 at t=5 (latest) and item 0 at t=3
        idx = list(split.test_users).index(0)
        assert split.test_items[idx] == 1

    def test_random_pick_deterministic_with_seed(self, small_taobao):
        a = leave_one_out_split(small_taobao, rng=np.random.default_rng(3),
                                use_timestamps=False)
        b = leave_one_out_split(small_taobao, rng=np.random.default_rng(3),
                                use_timestamps=False)
        np.testing.assert_array_equal(a.test_items, b.test_items)

    def test_users_with_single_interaction_skipped(self, tiny_dataset):
        split = leave_one_out_split(tiny_dataset)
        # users 1,2,3 have exactly one buy → not eligible
        assert set(split.test_users.tolist()) == {0}

    def test_min_train_interactions(self, small_taobao):
        strict = leave_one_out_split(small_taobao, min_train_interactions=3)
        loose = leave_one_out_split(small_taobao, min_train_interactions=1)
        assert len(strict) <= len(loose)
        for user in strict.test_users:
            assert strict.train.user_target_items(int(user)).size >= 3

    def test_auxiliary_behaviors_untouched(self, small_taobao):
        split = leave_one_out_split(small_taobao)
        for behavior in small_taobao.auxiliary_behaviors:
            assert (split.train.interaction_count(behavior)
                    == small_taobao.interaction_count(behavior))

    def test_parallel_arrays_validated(self, small_taobao):
        from repro.data.splits import LeaveOneOutSplit

        with pytest.raises(ValueError):
            LeaveOneOutSplit(train=small_taobao,
                             test_users=np.array([1, 2]),
                             test_items=np.array([1]))

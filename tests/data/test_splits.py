"""Tests of the leave-one-out and temporal splits."""

import numpy as np
import pytest

from repro.data import InteractionDataset, leave_one_out_split, temporal_split


def _duplicate_pair_dataset() -> InteractionDataset:
    """User 0 buys item 1 three times; user 1 buys items 2 and 3 once."""
    return InteractionDataset(
        "dup", 2, 4, ("buy",), "buy",
        {"buy": {
            "users": np.array([0, 0, 0, 1, 1]),
            "items": np.array([1, 1, 1, 2, 3]),
            "timestamps": np.array([1.0, 2.0, 3.0, 1.0, 2.0]),
        }},
    )


class TestLeaveOneOut:
    def test_held_out_removed_from_train(self, small_taobao):
        split = leave_one_out_split(small_taobao)
        for user, item in zip(split.test_users, split.test_items):
            assert item not in split.train.user_target_items(int(user))

    def test_one_test_item_per_user(self, small_taobao):
        split = leave_one_out_split(small_taobao)
        assert len(np.unique(split.test_users)) == len(split.test_users)

    def test_train_keeps_at_least_one_positive(self, small_taobao):
        split = leave_one_out_split(small_taobao)
        for user in split.test_users:
            assert split.train.user_target_items(int(user)).size >= 1

    def test_timestamps_pick_most_recent(self, tiny_dataset):
        split = leave_one_out_split(tiny_dataset, use_timestamps=True)
        # user 0 bought item 1 at t=5 (latest) and item 0 at t=3
        idx = list(split.test_users).index(0)
        assert split.test_items[idx] == 1

    def test_random_pick_deterministic_with_seed(self, small_taobao):
        a = leave_one_out_split(small_taobao, rng=np.random.default_rng(3),
                                use_timestamps=False)
        b = leave_one_out_split(small_taobao, rng=np.random.default_rng(3),
                                use_timestamps=False)
        np.testing.assert_array_equal(a.test_items, b.test_items)

    def test_users_with_single_interaction_skipped(self, tiny_dataset):
        split = leave_one_out_split(tiny_dataset)
        # users 1,2,3 have exactly one buy → not eligible
        assert set(split.test_users.tolist()) == {0}

    def test_min_train_interactions(self, small_taobao):
        strict = leave_one_out_split(small_taobao, min_train_interactions=3)
        loose = leave_one_out_split(small_taobao, min_train_interactions=1)
        assert len(strict) <= len(loose)
        for user in strict.test_users:
            assert strict.train.user_target_items(int(user)).size >= 3

    def test_auxiliary_behaviors_untouched(self, small_taobao):
        split = leave_one_out_split(small_taobao)
        for behavior in small_taobao.auxiliary_behaviors:
            assert (split.train.interaction_count(behavior)
                    == small_taobao.interaction_count(behavior))

    def test_parallel_arrays_validated(self, small_taobao):
        from repro.data.splits import LeaveOneOutSplit

        with pytest.raises(ValueError):
            LeaveOneOutSplit(train=small_taobao,
                             test_users=np.array([1, 2]),
                             test_items=np.array([1]))


class TestLeaveOneOutDuplicatePairs:
    """Pinned regression: LOO removes exactly ONE row per test user.

    The old implementation removed every occurrence of the held-out
    (user, item) pair, silently shrinking training sets on logs with
    repeat events.
    """

    def test_exactly_one_row_removed_per_test_user(self):
        dataset = _duplicate_pair_dataset()
        split = leave_one_out_split(dataset)
        assert set(split.test_users.tolist()) == {0, 1}
        # user 0 had 3 copies of (0, 1); exactly one leaves
        assert split.train.interaction_count("buy") == 5 - len(split)
        train_users, train_items, _ = split.train.arrays("buy")
        pair_count = int(((train_users == 0) & (train_items == 1)).sum())
        assert pair_count == 2

    def test_most_recent_duplicate_is_the_one_held(self):
        dataset = _duplicate_pair_dataset()
        split = leave_one_out_split(dataset)
        _, _, train_ts = split.train.arrays("buy")
        # the t=3.0 copy of (0, 1) was held out; t=1.0 and t=2.0 remain
        assert 3.0 not in train_ts[:2].tolist()
        assert {1.0, 2.0} <= set(train_ts.tolist())

    def test_duplicate_only_user_stays_eligible(self):
        """A user whose events are all one repeated pair still splits."""
        dataset = _duplicate_pair_dataset()
        split = leave_one_out_split(dataset)
        idx = list(split.test_users).index(0)
        assert split.test_items[idx] == 1
        assert 1 in split.train.user_target_items(0)


class TestTimestampSemantics:
    def test_all_zero_timestamps_fall_back_to_random(self):
        """An all-zero column means "no timestamps", not "everything at
        the epoch": picks must follow the rng, not argmax (row 0)."""
        dataset = InteractionDataset(
            "z", 1, 6, ("buy",), "buy",
            {"buy": {"users": np.zeros(6, dtype=np.int64),
                     "items": np.arange(6),
                     "timestamps": np.zeros(6)}},
        )
        picks = {int(leave_one_out_split(
            dataset, rng=np.random.default_rng(s)).test_items[0])
            for s in range(12)}
        assert len(picks) > 1

    def test_epoch_zero_rows_among_real_times_are_honored(self):
        """Epoch-0 timestamps mixed with real ones stay meaningful."""
        dataset = InteractionDataset(
            "e", 1, 3, ("buy",), "buy",
            {"buy": {"users": np.array([0, 0, 0]),
                     "items": np.array([0, 1, 2]),
                     "timestamps": np.array([0.0, 9.0, 0.0])}},
        )
        split = leave_one_out_split(dataset)
        assert split.test_items[0] == 1  # most recent real time


class TestTemporalSplit:
    def _timed_dataset(self) -> InteractionDataset:
        return InteractionDataset(
            "t", 3, 5, ("view", "buy"), "buy",
            {
                "view": {"users": np.array([0, 1, 2]),
                         "items": np.array([0, 1, 2]),
                         "timestamps": np.array([1.0, 5.0, 9.0])},
                "buy": {"users": np.array([0, 0, 1, 1, 2]),
                        "items": np.array([0, 1, 1, 2, 3]),
                        "timestamps": np.array([1.0, 8.0, 2.0, 9.0, 10.0])},
            },
        )

    def test_explicit_cutoff(self):
        split = temporal_split(self._timed_dataset(), split_time=8.0)
        assert split.split_time == 8.0
        # buys strictly before 8.0 train: (0,0,t1), (1,1,t2)
        assert split.train.interaction_count("buy") == 2
        # test rows at t >= 8: users 0, 1, 2 — but user 2 has no train buy
        assert set(split.test_users.tolist()) == {0, 1}

    def test_auxiliary_behaviors_truncated_too(self):
        split = temporal_split(self._timed_dataset(), split_time=8.0)
        _, _, view_ts = split.train.arrays("view")
        assert view_ts.size == 2 and view_ts.max() < 8.0

    def test_quantile_fraction(self):
        rng = np.random.default_rng(0)
        n = 200
        dataset = InteractionDataset(
            "q", 20, 40, ("buy",), "buy",
            {"buy": {"users": rng.integers(0, 20, n),
                     "items": rng.integers(0, 40, n),
                     "timestamps": rng.random(n) + 0.01}},
        )
        split = temporal_split(dataset, test_fraction=0.25)
        held = n - split.train.interaction_count("buy")
        assert abs(held - 0.25 * n) <= 0.05 * n

    def test_users_without_train_positives_dropped(self):
        dataset = InteractionDataset(
            "d", 2, 3, ("buy",), "buy",
            {"buy": {"users": np.array([0, 0, 1]),
                     "items": np.array([0, 1, 2]),
                     "timestamps": np.array([1.0, 5.0, 6.0])}},
        )
        split = temporal_split(dataset, split_time=4.0)
        # user 1's only buy is in the future → dropped from test
        assert set(split.test_users.tolist()) == {0}

    def test_timestampless_dataset_raises(self):
        dataset = InteractionDataset(
            "n", 2, 3, ("buy",), "buy",
            {"buy": {"users": np.array([0, 1]),
                     "items": np.array([0, 1]),
                     "timestamps": np.zeros(2)}},
        )
        with pytest.raises(ValueError, match="timestamps"):
            temporal_split(dataset)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError, match="test_fraction"):
            temporal_split(self._timed_dataset(), test_fraction=1.5)

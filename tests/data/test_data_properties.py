"""Property-based tests for dataset splitting and candidate generation."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data import (
    InteractionDataset,
    build_eval_candidates,
    leave_one_out_split,
)


@st.composite
def random_dataset(draw):
    num_users = draw(st.integers(min_value=3, max_value=10))
    num_items = draw(st.integers(min_value=8, max_value=20))
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    # every user gets 2-5 target interactions at distinct items
    users, items, timestamps = [], [], []
    for user in range(num_users):
        count = rng.integers(2, min(6, num_items))
        chosen = rng.choice(num_items, size=count, replace=False)
        users.extend([user] * count)
        items.extend(chosen.tolist())
        timestamps.extend(rng.random(count).tolist())
    aux_count = draw(st.integers(min_value=0, max_value=20))
    aux_users = rng.integers(0, num_users, aux_count)
    aux_items = rng.integers(0, num_items, aux_count)
    return InteractionDataset(
        "prop", num_users, num_items, ("aux", "buy"), "buy",
        {
            "buy": {"users": np.array(users), "items": np.array(items),
                    "timestamps": np.array(timestamps)},
            "aux": {"users": aux_users, "items": aux_items},
        },
    )


@given(random_dataset())
@settings(max_examples=30, deadline=None)
def test_split_conserves_interactions(dataset):
    split = leave_one_out_split(dataset)
    held_out = len(split)
    assert (split.train.interaction_count("buy") + held_out
            == dataset.interaction_count("buy"))


@given(random_dataset())
@settings(max_examples=30, deadline=None)
def test_split_test_items_were_real_interactions(dataset):
    split = leave_one_out_split(dataset)
    for user, item in zip(split.test_users, split.test_items):
        assert item in dataset.user_target_items(int(user))


@given(random_dataset())
@settings(max_examples=30, deadline=None)
def test_every_eligible_user_appears_once(dataset):
    split = leave_one_out_split(dataset)
    users, _, _ = dataset.arrays("buy")
    eligible = {u for u in range(dataset.num_users)
                if (users == u).sum() >= 2}
    assert set(split.test_users.tolist()) == eligible


@st.composite
def duplicate_heavy_dataset(draw):
    """Logs where the same (user, item) pair repeats many times."""
    num_users = draw(st.integers(min_value=2, max_value=6))
    num_items = draw(st.integers(min_value=3, max_value=8))
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    users, items, timestamps = [], [], []
    t = 0.0
    for user in range(num_users):
        # 2-4 distinct items, each repeated 1-4 times
        distinct = rng.choice(num_items,
                              size=rng.integers(2, min(5, num_items + 1)),
                              replace=False)
        for item in distinct:
            for _ in range(rng.integers(1, 5)):
                t += 1.0
                users.append(user)
                items.append(int(item))
                timestamps.append(t)
    return InteractionDataset(
        "dup", num_users, num_items, ("buy",), "buy",
        {"buy": {"users": np.array(users), "items": np.array(items),
                 "timestamps": np.array(timestamps)}},
    )


def _row_multiset(dataset):
    users, items, timestamps = dataset.arrays("buy")
    return sorted(zip(users.tolist(), items.tolist(), timestamps.tolist()))


@given(duplicate_heavy_dataset())
@settings(max_examples=30, deadline=None)
def test_train_plus_held_rows_equal_original_exactly(dataset):
    """train ∪ test == original rows, as an exact multiset.

    Each held-out (user, item) accounts for exactly one original row —
    the most recent one — and every other row survives bit-identical.
    """
    split = leave_one_out_split(dataset)
    original = _row_multiset(dataset)
    train = _row_multiset(split.train)
    assert len(train) + len(split) == len(original)
    # reconstruct the held rows: per test user, the most recent row
    users, items, timestamps = dataset.arrays("buy")
    held = []
    for user, item in zip(split.test_users, split.test_items):
        mask = users == user
        pick = np.flatnonzero(mask)[np.argmax(timestamps[mask])]
        assert items[pick] == item
        held.append((int(user), int(items[pick]), float(timestamps[pick])))
    assert sorted(train + held) == original


@given(duplicate_heavy_dataset())
@settings(max_examples=30, deadline=None)
def test_per_user_counts_drop_by_exactly_one(dataset):
    split = leave_one_out_split(dataset)
    users, _, _ = dataset.arrays("buy")
    train_users, _, _ = split.train.arrays("buy")
    test_set = set(split.test_users.tolist())
    for user in range(dataset.num_users):
        before = int((users == user).sum())
        after = int((train_users == user).sum())
        expected = before - 1 if user in test_set else before
        assert after == expected


@given(duplicate_heavy_dataset())
@settings(max_examples=20, deadline=None)
def test_held_pair_duplicates_stay_in_training(dataset):
    """If the held (user, item) pair occurred k times, k-1 copies remain."""
    split = leave_one_out_split(dataset)
    users, items, _ = dataset.arrays("buy")
    train_users, train_items, _ = split.train.arrays("buy")
    for user, item in zip(split.test_users, split.test_items):
        before = int(((users == user) & (items == item)).sum())
        after = int(((train_users == user) & (train_items == item)).sum())
        assert after == before - 1


@given(random_dataset(), st.integers(min_value=1, max_value=5))
@settings(max_examples=20, deadline=None)
def test_candidates_disjoint_from_train_positives(dataset, num_negatives):
    from hypothesis import assume

    split = leave_one_out_split(dataset)
    # only feasible requests: every user must have enough never-interacted
    # items left (the library correctly raises otherwise)
    for user in split.test_users:
        remaining = (dataset.num_items
                     - split.train.user_target_items(int(user)).size - 1)
        assume(remaining >= num_negatives)
    candidates = build_eval_candidates(split.train, split.test_users,
                                       split.test_items,
                                       num_negatives=num_negatives,
                                       rng=np.random.default_rng(0))
    for user, row in zip(candidates.users, candidates.items):
        train_items = set(split.train.user_target_items(int(user)).tolist())
        negatives = set(row[1:].tolist())
        assert not (negatives & train_items)
        assert row[0] not in negatives

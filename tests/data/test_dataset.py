"""Tests of the InteractionDataset container."""

import numpy as np
import pytest

from repro.data import InteractionDataset


class TestBasics:
    def test_counts(self, tiny_dataset):
        assert tiny_dataset.num_behaviors == 2
        assert tiny_dataset.interaction_count() == 12
        assert tiny_dataset.interaction_count("buy") == 5

    def test_auxiliary_behaviors(self, tiny_dataset):
        assert tiny_dataset.auxiliary_behaviors == ("view",)

    def test_arrays_parallel(self, tiny_dataset):
        users, items, timestamps = tiny_dataset.arrays("view")
        assert users.shape == items.shape == timestamps.shape

    def test_iter_interactions(self, tiny_dataset):
        events = list(tiny_dataset.iter_interactions("buy"))
        assert len(events) == 5
        assert events[0].behavior == "buy"

    def test_user_target_items(self, tiny_dataset):
        np.testing.assert_array_equal(sorted(tiny_dataset.user_target_items(0)), [0, 1])

    def test_describe(self, tiny_dataset):
        row = tiny_dataset.describe()
        assert row["User #"] == 4 and row["target"] == "buy"

    def test_graph_cached(self, tiny_dataset):
        assert tiny_dataset.graph() is tiny_dataset.graph()


class TestValidation:
    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset("x", 2, 2, ("a",), "b",
                               {"a": {"users": np.array([0]), "items": np.array([0])}})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset("x", 2, 2, ("a",), "a",
                               {"a": {"users": np.array([0, 1]), "items": np.array([0])}})

    def test_missing_behavior_defaults_empty(self):
        ds = InteractionDataset("x", 2, 2, ("a", "b"), "a",
                                {"a": {"users": np.array([0]), "items": np.array([1])}})
        assert ds.interaction_count("b") == 0


class TestDerivedDatasets:
    def test_drop_behaviors(self, tiny_dataset):
        dropped = tiny_dataset.drop_behaviors(["view"])
        assert dropped.behavior_names == ("buy",)
        assert dropped.interaction_count() == 5
        assert dropped.num_users == tiny_dataset.num_users

    def test_cannot_drop_target(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.drop_behaviors(["buy"])

    def test_only_target(self, tiny_dataset):
        only = tiny_dataset.only_target()
        assert only.behavior_names == ("buy",)
        assert only.target_behavior == "buy"

    def test_remove_target_pairs(self, tiny_dataset):
        reduced = tiny_dataset.remove_target_pairs(np.array([0]), np.array([1]))
        assert reduced.interaction_count("buy") == 4
        assert 1 not in reduced.user_target_items(0)
        # auxiliary behavior untouched
        assert reduced.interaction_count("view") == 7

    def test_remove_target_pairs_keeps_other_users(self, tiny_dataset):
        reduced = tiny_dataset.remove_target_pairs(np.array([0]), np.array([1]))
        np.testing.assert_array_equal(reduced.user_target_items(1), [2])

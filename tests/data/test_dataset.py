"""Tests of the InteractionDataset container."""

import numpy as np
import pytest

from repro.data import InteractionDataset


class TestBasics:
    def test_counts(self, tiny_dataset):
        assert tiny_dataset.num_behaviors == 2
        assert tiny_dataset.interaction_count() == 12
        assert tiny_dataset.interaction_count("buy") == 5

    def test_auxiliary_behaviors(self, tiny_dataset):
        assert tiny_dataset.auxiliary_behaviors == ("view",)

    def test_arrays_parallel(self, tiny_dataset):
        users, items, timestamps = tiny_dataset.arrays("view")
        assert users.shape == items.shape == timestamps.shape

    def test_iter_interactions(self, tiny_dataset):
        events = list(tiny_dataset.iter_interactions("buy"))
        assert len(events) == 5
        assert events[0].behavior == "buy"

    def test_user_target_items(self, tiny_dataset):
        np.testing.assert_array_equal(sorted(tiny_dataset.user_target_items(0)), [0, 1])

    def test_describe(self, tiny_dataset):
        row = tiny_dataset.describe()
        assert row["User #"] == 4 and row["target"] == "buy"

    def test_graph_cached(self, tiny_dataset):
        assert tiny_dataset.graph() is tiny_dataset.graph()


class TestValidation:
    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset("x", 2, 2, ("a",), "b",
                               {"a": {"users": np.array([0]), "items": np.array([0])}})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset("x", 2, 2, ("a",), "a",
                               {"a": {"users": np.array([0, 1]), "items": np.array([0])}})

    def test_missing_behavior_defaults_empty(self):
        ds = InteractionDataset("x", 2, 2, ("a", "b"), "a",
                                {"a": {"users": np.array([0]), "items": np.array([1])}})
        assert ds.interaction_count("b") == 0


class TestDerivedDatasets:
    def test_drop_behaviors(self, tiny_dataset):
        dropped = tiny_dataset.drop_behaviors(["view"])
        assert dropped.behavior_names == ("buy",)
        assert dropped.interaction_count() == 5
        assert dropped.num_users == tiny_dataset.num_users

    def test_cannot_drop_target(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.drop_behaviors(["buy"])

    def test_only_target(self, tiny_dataset):
        only = tiny_dataset.only_target()
        assert only.behavior_names == ("buy",)
        assert only.target_behavior == "buy"

    def test_remove_target_pairs(self, tiny_dataset):
        reduced = tiny_dataset.remove_target_pairs(np.array([0]), np.array([1]))
        assert reduced.interaction_count("buy") == 4
        assert 1 not in reduced.user_target_items(0)
        # auxiliary behavior untouched
        assert reduced.interaction_count("view") == 7

    def test_remove_target_pairs_keeps_other_users(self, tiny_dataset):
        reduced = tiny_dataset.remove_target_pairs(np.array([0]), np.array([1]))
        np.testing.assert_array_equal(reduced.user_target_items(1), [2])


def _dup_dataset() -> InteractionDataset:
    """Target behavior with repeated (user, item) rows."""
    return InteractionDataset(
        "dup", 2, 3, ("buy",), "buy",
        {"buy": {
            "users": np.array([0, 0, 0, 1, 0]),
            "items": np.array([2, 1, 2, 2, 2]),
            "timestamps": np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
        }},
    )


class TestRemoveExactOccurrences:
    """Pinned regression: removal takes one ROW per request, never every
    occurrence of a repeated (user, item) pair."""

    def test_remove_pair_takes_single_earliest_occurrence(self):
        reduced = _dup_dataset().remove_target_pairs(np.array([0]),
                                                     np.array([2]))
        users, items, ts = reduced.arrays("buy")
        # (0, 2) appeared at t=1, 3, 5; only the earliest row leaves
        assert reduced.interaction_count("buy") == 4
        mask = (users == 0) & (items == 2)
        assert sorted(ts[mask].tolist()) == [3.0, 5.0]

    def test_duplicate_requests_remove_that_many_rows(self):
        reduced = _dup_dataset().remove_target_pairs(np.array([0, 0]),
                                                     np.array([2, 2]))
        assert reduced.interaction_count("buy") == 3
        users, items, _ = reduced.arrays("buy")
        assert int(((users == 0) & (items == 2)).sum()) == 1

    def test_absent_pairs_silently_ignored(self):
        reduced = _dup_dataset().remove_target_pairs(np.array([1, 1]),
                                                     np.array([0, 2]))
        # (1, 0) never happened; only (1, 2) leaves
        assert reduced.interaction_count("buy") == 4

    def test_empty_request_is_identity(self):
        dataset = _dup_dataset()
        reduced = dataset.remove_target_pairs(np.array([], dtype=np.int64),
                                              np.array([], dtype=np.int64))
        assert reduced.interaction_count("buy") == dataset.interaction_count("buy")

    def test_remove_rows_by_index(self):
        reduced = _dup_dataset().remove_target_rows(np.array([1, 3]))
        users, items, ts = reduced.arrays("buy")
        assert users.tolist() == [0, 0, 0]
        assert items.tolist() == [2, 2, 2]
        assert ts.tolist() == [1.0, 3.0, 5.0]

    def test_remove_rows_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            _dup_dataset().remove_target_rows(np.array([99]))
        with pytest.raises(ValueError, match="out of range"):
            _dup_dataset().remove_target_rows(np.array([-1]))

    def test_auxiliary_behaviors_untouched_by_row_removal(self, tiny_dataset):
        reduced = tiny_dataset.remove_target_rows(np.array([0]))
        assert reduced.interaction_count("view") == 7
        assert reduced.interaction_count("buy") == 4

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import InteractionDataset, taobao_like, yelp_like


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset() -> InteractionDataset:
    """A hand-built 4-user / 5-item dataset with two behavior types."""
    return InteractionDataset(
        name="tiny",
        num_users=4,
        num_items=5,
        behavior_names=("view", "buy"),
        target_behavior="buy",
        interactions={
            "view": {
                "users": np.array([0, 0, 1, 1, 2, 3, 3]),
                "items": np.array([0, 1, 1, 2, 3, 0, 4]),
                "timestamps": np.array([1.0, 2.0, 1.0, 3.0, 1.0, 2.0, 4.0]),
            },
            "buy": {
                "users": np.array([0, 1, 2, 3, 0]),
                "items": np.array([1, 2, 3, 4, 0]),
                "timestamps": np.array([5.0, 4.0, 2.0, 5.0, 3.0]),
            },
        },
    )


@pytest.fixture(scope="session")
def small_taobao() -> InteractionDataset:
    """A small but realistic funnel dataset shared across tests."""
    return taobao_like(num_users=40, num_items=60, seed=11)


@pytest.fixture(scope="session")
def small_yelp() -> InteractionDataset:
    return yelp_like(num_users=40, num_items=60, seed=13)

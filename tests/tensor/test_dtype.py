"""Configurable-dtype compute path: API, float32 gradients, seed parity.

Three layers of protection:

* the default-dtype switch/context behaves and never leaks between tests;
* the autograd ops that power the models pass numerical gradient checks
  under float32 with appropriately loosened tolerances;
* the float64 path stays *bit-identical* to the pre-refactor substrate —
  golden scores recorded from the seed implementation must reproduce
  exactly (seed parity).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import (
    SparseAdjacency,
    Tensor,
    check_gradients,
    default_dtype,
    dtype_tolerances,
    get_default_dtype,
    set_default_dtype,
)
from repro.tensor import functional as F


@pytest.fixture(autouse=True)
def _restore_default_dtype():
    previous = get_default_dtype()
    yield
    set_default_dtype(previous)


class TestDefaultDtypeAPI:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.dtype(np.float64)

    def test_set_and_restore(self):
        set_default_dtype("float32")
        assert Tensor([1.0, 2.0]).dtype == np.float32
        set_default_dtype("float64")
        assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_context_manager_scopes(self):
        with default_dtype("float32"):
            assert Tensor(3.0).dtype == np.float32
        assert Tensor(3.0).dtype == np.float64

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with default_dtype("float32"):
                raise RuntimeError("boom")
        assert get_default_dtype() == np.dtype(np.float64)

    def test_rejects_non_float_dtype(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_constructors_honor_dtype(self):
        with default_dtype("float32"):
            assert Tensor.zeros(2, 3).dtype == np.float32
            assert Tensor.ones(4).dtype == np.float32
            assert Tensor.randn(2, 2, rng=np.random.default_rng(0)).dtype == np.float32

    def test_randn_values_match_across_dtypes(self):
        """The same seed draws the same values at every precision."""
        a = Tensor.randn(5, rng=np.random.default_rng(3)).data
        with default_dtype("float32"):
            b = Tensor.randn(5, rng=np.random.default_rng(3)).data
        np.testing.assert_allclose(a, b, rtol=1e-6)

    def test_scalars_adopt_operand_dtype(self):
        """float32 graphs stay float32 through scalar arithmetic."""
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        out = ((x * 2.0 + 1.0) / 3.0 - 0.5).maximum(0.0)
        assert out.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32

    def test_astype_roundtrips_gradient(self):
        x = Tensor(np.ones(4), requires_grad=True)
        y = x.astype(np.float32)
        assert y.dtype == np.float32
        (y * 2.0).sum().backward()
        assert x.grad.dtype == np.float64
        np.testing.assert_allclose(x.grad, 2.0)


class TestItem:
    def test_scalar_item(self):
        assert Tensor(5.0).item() == 5.0

    def test_multi_element_item_raises_value_error(self):
        with pytest.raises(ValueError, match="single-element"):
            Tensor([1.0, 2.0]).item()


class TestSparseTransposeCache:
    def test_T_shares_cache_both_directions(self):
        adj = SparseAdjacency(sp.random(5, 7, density=0.5, random_state=0))
        transposed = adj.T
        assert transposed._transpose_cache is adj.matrix
        assert adj._transpose_cache is transposed.matrix

    def test_precompute_transpose_eager(self):
        adj = SparseAdjacency(sp.random(5, 7, density=0.5, random_state=0),
                              precompute_transpose=True)
        assert adj._transpose_cache is not None

    def test_dtype_follows_default(self):
        with default_dtype("float32"):
            adj = SparseAdjacency(sp.random(4, 4, density=0.5, random_state=1))
        assert adj.dtype == np.float32
        assert adj.normalized("row").dtype == np.float32
        assert adj.T.dtype == np.float32


class TestFloat32Gradients:
    """The grad-check suite's core ops re-run under float32."""

    TOL = dtype_tolerances("float32")

    def _tensor(self, rng, shape, scale=1.0):
        return Tensor((rng.standard_normal(shape) * scale).astype(np.float32),
                      requires_grad=True)

    def test_arithmetic_chain(self):
        rng = np.random.default_rng(0)
        a = self._tensor(rng, (3, 4))
        b = self._tensor(rng, (3, 4))
        check_gradients(lambda a, b: a * b + a - b / 2.0, [a, b], **self.TOL)

    def test_matmul(self):
        rng = np.random.default_rng(1)
        a = self._tensor(rng, (4, 3))
        b = self._tensor(rng, (3, 5))
        check_gradients(lambda a, b: a.matmul(b), [a, b], **self.TOL)

    def test_nonlinearities(self):
        rng = np.random.default_rng(2)
        x = self._tensor(rng, (6,))
        check_gradients(lambda x: x.sigmoid(), [x], **self.TOL)
        check_gradients(lambda x: x.tanh(), [x], **self.TOL)
        check_gradients(lambda x: (x + 3.0).relu(), [x], **self.TOL)

    def test_softmax(self):
        rng = np.random.default_rng(3)
        x = self._tensor(rng, (4, 3))
        check_gradients(lambda x: F.softmax(x, axis=-1), [x], **self.TOL)

    def test_reductions_and_shapes(self):
        rng = np.random.default_rng(4)
        x = self._tensor(rng, (3, 4))
        check_gradients(lambda x: x.sum(axis=1), [x], **self.TOL)
        check_gradients(lambda x: x.mean(axis=0), [x], **self.TOL)
        check_gradients(lambda x: x.reshape(4, 3).transpose(), [x], **self.TOL)

    def test_gather_rows(self):
        rng = np.random.default_rng(5)
        x = self._tensor(rng, (6, 3))
        idx = np.array([0, 2, 2, 5])
        check_gradients(lambda x: x.gather_rows(idx), [x], **self.TOL)

    def test_sparse_matmul(self):
        rng = np.random.default_rng(6)
        with default_dtype("float32"):
            adj = SparseAdjacency(sp.random(5, 7, density=0.5, random_state=7))
        h = self._tensor(rng, (7, 3))
        check_gradients(lambda h: adj.matmul(h), [h], **self.TOL)
        out = adj.matmul(h)
        assert out.dtype == np.float32

    def test_gnmr_layer_float32(self):
        from repro.core.layers import GNMRPropagationLayer

        rng = np.random.default_rng(7)
        with default_dtype("float32"):
            layer = GNMRPropagationLayer(dim=4, memory_dims=2, num_heads=2, rng=rng)
            adjacencies = [
                SparseAdjacency(sp.random(5, 8, density=0.4, random_state=s))
                for s in (1, 2)
            ]
        source = self._tensor(rng, (8, 4))
        out = layer.propagate_side(adjacencies, source)
        assert out.dtype == np.float32
        check_gradients(lambda s: layer.propagate_side(adjacencies, s),
                        [source], **self.TOL)


class TestSeedParity:
    """float64 results must be bit-identical to the pre-refactor substrate.

    The golden scores below were recorded from the seed implementation
    (per-behavior SpMM loop, hand-rolled adjacency building) immediately
    before the PropagationEngine refactor. Any bit-level drift in the
    float64 path shows up here.
    """

    GNMR_GOLDEN = np.array([
        0.32729831588482305, -0.037324087565587964, -0.07302223270344582,
        -0.04509849138475442, 0.2542494706788363, 0.522932900736781,
        -0.018301873393090477, 0.37108517224946636,
    ])
    NGCF_GOLDEN = np.array([
        0.021098157681668374, -0.12854861938771572, 0.15116226220590295,
        -0.03985173114034231, 0.06980060167427604, -0.10979619558273532,
        0.06382377564325978, -0.1428940685413741,
    ])

    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.data import taobao_like

        return taobao_like(num_users=40, num_items=60, seed=3)

    def test_gnmr_float64_bit_identical(self, dataset):
        from repro.core import GNMR, GNMRConfig

        model = GNMR(dataset, GNMRConfig(pretrain=False, seed=0, num_layers=2))
        model.eval()
        scores = model.score(np.arange(8), np.arange(8, 16))
        assert scores.dtype == np.float64
        assert (scores == self.GNMR_GOLDEN).all(), (
            f"float64 seed parity broken: max diff "
            f"{np.abs(scores - self.GNMR_GOLDEN).max():.3e}"
        )

    def test_ngcf_float64_bit_identical(self, dataset):
        from repro.models.ngcf import NGCF

        model = NGCF(dataset, embedding_dim=8, num_layers=2, seed=0)
        model.eval()
        scores = model.score(np.arange(8), np.arange(8, 16))
        assert (scores == self.NGCF_GOLDEN).all(), (
            f"float64 seed parity broken: max diff "
            f"{np.abs(scores - self.NGCF_GOLDEN).max():.3e}"
        )

    def test_gnmr_float32_tracks_float64(self, dataset):
        """The fast path approximates the reference path to f32 precision."""
        from repro.core import GNMR, GNMRConfig

        model = GNMR(dataset, GNMRConfig(pretrain=False, seed=0, num_layers=2,
                                         dtype="float32"))
        model.eval()
        scores = model.score(np.arange(8), np.arange(8, 16))
        assert scores.dtype == np.float32
        np.testing.assert_allclose(scores, self.GNMR_GOLDEN, atol=1e-4)

"""Row-sparse gradients: RowSparseGrad semantics + embedding_rows backward."""

import numpy as np
import pytest

from repro.tensor import RowSparseGrad, Tensor, add_grads, grad_to_dense
from repro.tensor.grad_check import numerical_grad


class TestRowSparseGrad:
    def test_coalesces_duplicate_rows(self):
        g = RowSparseGrad([2, 0, 2], np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]]), 4)
        np.testing.assert_array_equal(g.indices, [0, 2])
        np.testing.assert_array_equal(g.values, [[2.0, 2.0], [4.0, 4.0]])

    def test_to_dense_shape_and_values(self):
        g = RowSparseGrad([1, 3], np.array([[1.0], [2.0]]), 5)
        dense = g.to_dense()
        assert dense.shape == (5, 1)
        np.testing.assert_array_equal(dense[[1, 3]], [[1.0], [2.0]])
        assert dense[[0, 2, 4]].sum() == 0.0

    def test_out_of_range_rows_rejected(self):
        with pytest.raises(IndexError):
            RowSparseGrad([5], np.ones((1, 2)), 5)

    def test_sparse_plus_sparse_stays_sparse(self):
        a = RowSparseGrad([0, 2], np.ones((2, 3)), 4)
        b = RowSparseGrad([2, 3], np.ones((2, 3)) * 2, 4)
        merged = a + b
        assert isinstance(merged, RowSparseGrad)
        np.testing.assert_array_equal(merged.indices, [0, 2, 3])
        np.testing.assert_array_equal(merged.to_dense(),
                                      a.to_dense() + b.to_dense())

    def test_sparse_plus_dense_densifies_both_orders(self):
        sparse = RowSparseGrad([1], np.array([[1.0, 1.0]]), 3)
        dense = np.full((3, 2), 0.5)
        for result in (sparse + dense, dense + sparse, add_grads(dense, sparse)):
            assert isinstance(result, np.ndarray)
            np.testing.assert_array_equal(result, sparse.to_dense() + dense)

    def test_scalar_multiply_and_inplace_scale(self):
        g = RowSparseGrad([0], np.array([[2.0, 4.0]]), 2)
        doubled = g * 2.0
        np.testing.assert_array_equal(doubled.values, [[4.0, 8.0]])
        g.scale_(0.5)
        np.testing.assert_array_equal(g.values, [[1.0, 2.0]])

    def test_sq_norm_matches_dense(self):
        vals = np.random.default_rng(0).standard_normal((3, 4))
        g = RowSparseGrad([0, 2, 5], vals, 8)
        assert g.sq_norm() == pytest.approx(float(np.sum(g.to_dense() ** 2)))

    def test_float32_values_keep_dtype_through_scale(self):
        g = RowSparseGrad([0], np.ones((1, 2), dtype=np.float32), 2)
        assert (g * 0.5).dtype == np.float32
        assert g.scale_(0.5).values.dtype == np.float32

    def test_grad_to_dense_passthrough(self):
        dense = np.ones((2, 2))
        assert grad_to_dense(dense) is dense
        assert grad_to_dense(None) is None


class TestEmbeddingRows:
    def test_forward_matches_gather_rows(self):
        table = Tensor(np.arange(20.0).reshape(5, 4), requires_grad=True)
        idx = np.array([4, 0, 4])
        np.testing.assert_array_equal(table.embedding_rows(idx).data,
                                      table.gather_rows(idx).data)

    def test_backward_is_row_sparse_on_leaf(self):
        table = Tensor(np.random.default_rng(0).standard_normal((6, 3)),
                       requires_grad=True)
        idx = np.array([1, 4, 1])
        out = table.embedding_rows(idx)
        (out * out).sum().backward()
        assert isinstance(table.grad, RowSparseGrad)
        np.testing.assert_array_equal(table.grad.indices, [1, 4])

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        table = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2, 4])
        weights = rng.standard_normal((4, 3))

        def fn(t):
            return t.embedding_rows(idx) * Tensor(weights)

        fn(table).sum().backward()
        analytic = table.grad.to_dense()
        numeric = numerical_grad(fn, [table], 0)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6, rtol=1e-5)

    def test_backward_matches_gather_rows_backward(self):
        data = np.random.default_rng(2).standard_normal((7, 2))
        idx = np.array([3, 3, 0, 6])
        a = Tensor(data.copy(), requires_grad=True)
        b = Tensor(data.copy(), requires_grad=True)
        (a.embedding_rows(idx) ** 2).sum().backward()
        (b.gather_rows(idx) ** 2).sum().backward()
        np.testing.assert_array_equal(a.grad.to_dense(), b.grad)

    def test_non_leaf_table_falls_back_to_dense(self):
        base = Tensor(np.ones((4, 2)), requires_grad=True)
        computed = base * 2.0  # interior node: sparse grads must not reach it
        out = computed.embedding_rows(np.array([0, 3]))
        out.sum().backward()
        assert isinstance(base.grad, np.ndarray)
        expected = np.zeros((4, 2))
        expected[[0, 3]] = 2.0
        np.testing.assert_array_equal(base.grad, expected)

    def test_mixed_sparse_and_dense_contributions_densify(self):
        table = Tensor(np.ones((4, 2)), requires_grad=True)
        loss = table.embedding_rows(np.array([1])).sum() + (table * 3.0).sum()
        loss.backward()
        assert isinstance(table.grad, np.ndarray)
        expected = np.full((4, 2), 3.0)
        expected[1] += 1.0
        np.testing.assert_array_equal(table.grad, expected)

    def test_two_sparse_gathers_merge_sparse(self):
        table = Tensor(np.ones((6, 2)), requires_grad=True)
        loss = (table.embedding_rows(np.array([0, 2])).sum()
                + table.embedding_rows(np.array([2, 5])).sum())
        loss.backward()
        assert isinstance(table.grad, RowSparseGrad)
        np.testing.assert_array_equal(table.grad.indices, [0, 2, 5])
        np.testing.assert_array_equal(table.grad.values,
                                      [[1.0, 1.0], [2.0, 2.0], [1.0, 1.0]])

    def test_rejects_multi_dim_indices(self):
        table = Tensor(np.ones((4, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            table.embedding_rows(np.array([[0, 1]]))

    def test_repeated_backward_accumulates(self):
        table = Tensor(np.ones((4, 2)), requires_grad=True)
        for _ in range(2):
            table.embedding_rows(np.array([1])).sum().backward()
        assert isinstance(table.grad, RowSparseGrad)
        np.testing.assert_array_equal(table.grad.to_dense()[1], [2.0, 2.0])

"""Behavioural tests of the autograd machinery itself."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled


class TestGraphMechanics:
    def test_reused_tensor_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x  # x appears twice in one op
        y.backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_diamond_graph(self):
        x = Tensor([3.0], requires_grad=True)
        a = x * 2.0
        b = x + 1.0
        out = a * b  # d/dx (2x * (x+1)) = 4x + 2
        out.backward()
        np.testing.assert_allclose(x.grad, [14.0])

    def test_deep_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.1
        y.backward()
        np.testing.assert_allclose(x.grad, [1.1 ** 50], rtol=1e-10)

    def test_repeated_backward_accumulates_on_leaves(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3.0).sum().backward()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [6.0, 6.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_requires_scalar_without_seed(self):
        x = Tensor([[1.0, 2.0]], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_with_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [2.0, 20.0])

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_grad_not_tracked_through_constants(self):
        x = Tensor([1.0], requires_grad=True)
        c = Tensor([5.0])  # constant
        out = x * c
        out.backward()
        assert c.grad is None
        np.testing.assert_allclose(x.grad, [5.0])


class TestNoGrad:
    def test_no_grad_disables_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        d = (x * 2.0).detach()
        assert not d.requires_grad
        out = d * 3.0
        assert not out.requires_grad


class TestTensorBasics:
    def test_dtype_coercion(self):
        assert Tensor([1, 2, 3]).data.dtype == np.float64
        assert Tensor(np.arange(3)).data.dtype == np.float64
        # explicit float arrays keep their precision under the default dtype
        assert Tensor(np.arange(3, dtype=np.float32)).data.dtype == np.float32
        assert Tensor([1, 2, 3], dtype=np.float32).data.dtype == np.float32

    def test_shape_ndim_size_len(self):
        x = Tensor(np.zeros((2, 3)))
        assert x.shape == (2, 3)
        assert x.ndim == 2
        assert x.size == 6
        assert len(x) == 2

    def test_item(self):
        assert Tensor([[4.0]]).item() == 4.0

    def test_T_property(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x.T.shape == (3, 2)

    def test_constructors(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones((4,)).data.sum() == 4.0
        r = Tensor.randn(5, 5, rng=np.random.default_rng(0), scale=0.1)
        assert r.shape == (5, 5)
        assert np.abs(r.data).max() < 1.0

    def test_comparison_produces_constants(self):
        x = Tensor([1.0, 5.0], requires_grad=True)
        mask = x > 2.0
        assert not mask.requires_grad
        np.testing.assert_allclose(mask.data, [0.0, 1.0])
        mask_lt = x < 2.0
        np.testing.assert_allclose(mask_lt.data, [1.0, 0.0])

    def test_numpy_returns_underlying(self):
        x = Tensor([1.0, 2.0])
        assert x.numpy() is x.data

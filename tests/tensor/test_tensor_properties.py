"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.tensor import Tensor, check_gradients

finite = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                   allow_infinity=False, width=64)


def small_arrays(max_dims=3, max_side=4):
    return arrays(np.float64,
                  array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
                  elements=finite)


@given(small_arrays(), small_arrays())
@settings(max_examples=40, deadline=None)
def test_add_commutes(a, b):
    """a + b == b + a for any broadcast-compatible pair (else both raise)."""
    ta, tb = Tensor(a), Tensor(b)
    try:
        left = (ta + tb).data
    except ValueError:
        np.testing.assert_raises(ValueError, lambda: (tb + ta).data)
        return
    np.testing.assert_allclose(left, (tb + ta).data)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_mul_by_one_identity(a):
    np.testing.assert_allclose((Tensor(a) * 1.0).data, a)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_exp_log_roundtrip(a):
    x = Tensor(np.abs(a) + 1.0)
    np.testing.assert_allclose(x.log().exp().data, x.data, rtol=1e-10)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_sum_matches_numpy(a):
    np.testing.assert_allclose(float(Tensor(a).sum().data), a.sum(), rtol=1e-10)


@given(small_arrays())
@settings(max_examples=25, deadline=None)
def test_gradient_of_sum_is_ones(a):
    x = Tensor(a, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(a))


@given(small_arrays(max_dims=2))
@settings(max_examples=25, deadline=None)
def test_gradient_linearity(a):
    """∂(αΣx)/∂x = α · ∂(Σx)/∂x."""
    x = Tensor(a, requires_grad=True)
    (x * 3.5).sum().backward()
    np.testing.assert_allclose(x.grad, 3.5 * np.ones_like(a))


@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=20, deadline=None)
def test_matmul_grad_random_shapes(m, k, n):
    rng = np.random.default_rng(m * 100 + k * 10 + n)
    a = Tensor(rng.standard_normal((m, k)), requires_grad=True)
    b = Tensor(rng.standard_normal((k, n)), requires_grad=True)
    check_gradients(lambda a, b: a.matmul(b), [a, b])


@given(small_arrays(max_dims=2))
@settings(max_examples=25, deadline=None)
def test_softmax_rows_sum_to_one(a):
    from repro.tensor import functional as F

    out = F.softmax(Tensor(a), axis=-1).data
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(out.shape[:-1]), rtol=1e-9)
    assert (out >= 0).all()


@given(small_arrays(max_dims=2))
@settings(max_examples=25, deadline=None)
def test_log_softmax_consistent_with_softmax(a):
    from repro.tensor import functional as F

    x = Tensor(a)
    np.testing.assert_allclose(F.log_softmax(x).data,
                               np.log(F.softmax(x).data + 1e-300), atol=1e-8)


@given(small_arrays(max_dims=2), st.floats(min_value=0.0, max_value=0.8))
@settings(max_examples=25, deadline=None)
def test_dropout_preserves_expectation_when_off(a, rate):
    from repro.tensor import functional as F

    out = F.dropout(Tensor(a), rate, training=False)
    np.testing.assert_array_equal(out.data, a)

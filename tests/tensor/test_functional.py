"""Tests of composite differentiable functions."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, functional as F


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.standard_normal((4, 6))), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0)

    def test_invariant_to_shift(self, rng):
        x = rng.standard_normal((3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_stable_for_large_inputs(self):
        out = F.softmax(Tensor([[1000.0, 1000.0]])).data
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_gradient(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        weights = Tensor(rng.standard_normal((3, 4)))
        check_gradients(lambda x: F.softmax(x, axis=-1) * weights, [x], atol=1e-5)

    def test_axis_zero(self, rng):
        out = F.softmax(Tensor(rng.standard_normal((3, 4))), axis=0)
        np.testing.assert_allclose(out.data.sum(axis=0), 1.0)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self, rng):
        x = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(F.softmax(x).data), atol=1e-10)

    def test_gradient(self, rng):
        x = Tensor(rng.standard_normal((2, 5)), requires_grad=True)
        check_gradients(lambda x: F.log_softmax(x, axis=-1), [x], atol=1e-5)


class TestDropout:
    def test_identity_when_not_training(self, rng):
        x = Tensor(rng.standard_normal((10, 10)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_identity_when_rate_zero(self, rng):
        x = Tensor(rng.standard_normal((10, 10)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_scales_survivors(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.4, training=True, rng=np.random.default_rng(0)).data
        survivors = out[out > 0]
        np.testing.assert_allclose(survivors, 1.0 / 0.6)
        # drop fraction close to the rate
        assert abs((out == 0).mean() - 0.4) < 0.02

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)


class TestL2Normalize:
    def test_unit_norm(self, rng):
        out = F.l2_normalize(Tensor(rng.standard_normal((5, 8))))
        np.testing.assert_allclose(np.linalg.norm(out.data, axis=-1), 1.0)

    def test_zero_row_is_safe(self):
        out = F.l2_normalize(Tensor(np.zeros((1, 4))))
        assert np.isfinite(out.data).all()

    def test_gradient(self, rng):
        x = Tensor(rng.standard_normal((3, 4)) + 0.5, requires_grad=True)
        check_gradients(lambda x: F.l2_normalize(x), [x], atol=1e-5)


class TestAttention:
    def test_output_shape(self, rng):
        q = Tensor(rng.standard_normal((2, 3, 8)))
        k = Tensor(rng.standard_normal((2, 5, 8)))
        v = Tensor(rng.standard_normal((2, 5, 6)))
        out, weights = F.scaled_dot_product_attention(q, k, v)
        assert out.shape == (2, 3, 6)
        assert weights.shape == (2, 3, 5)
        np.testing.assert_allclose(weights.data.sum(axis=-1), 1.0)

    def test_gradients(self, rng):
        q = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        k = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        v = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        check_gradients(lambda q, k, v: F.scaled_dot_product_attention(q, k, v)[0],
                        [q, k, v], atol=1e-4)


class TestLossPrimitives:
    def test_mse_value(self):
        pred = Tensor([1.0, 2.0])
        assert float(F.mse(pred, np.array([1.0, 4.0])).data) == pytest.approx(2.0)

    def test_bce_matches_reference(self, rng):
        logits = rng.standard_normal(20)
        target = (rng.random(20) > 0.5).astype(float)
        ours = float(F.binary_cross_entropy_with_logits(Tensor(logits), target).data)
        p = 1.0 / (1.0 + np.exp(-logits))
        reference = -(target * np.log(p) + (1 - target) * np.log(1 - p)).mean()
        assert ours == pytest.approx(reference, rel=1e-9)

    def test_bce_stable_extreme_logits(self):
        out = F.binary_cross_entropy_with_logits(
            Tensor([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert float(out.data) == pytest.approx(0.0, abs=1e-9)

    def test_bce_gradient(self, rng):
        logits = Tensor(rng.standard_normal(10), requires_grad=True)
        target = (rng.random(10) > 0.5).astype(float)
        check_gradients(lambda z: F.binary_cross_entropy_with_logits(z, target), [logits])

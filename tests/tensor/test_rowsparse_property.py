"""Property-based randomized parity suite for ``RowSparseGrad``.

Accumulation is the operation everything downstream trusts: backward
passes chain ``add_grads`` over arbitrary mixes of sparse and dense
contributions, optimizers read the coalesced result, and the shard router
re-partitions it. Each trial here draws a random accumulation program —
random row counts, duplicate-heavy index batches, random sparse/dense
mixing order, random scalar scalings — executes it through the sparse
types, and checks the outcome against a dense reference accumulator that
uses nothing but plain numpy. Seeded trials, so failures replay exactly.
"""

import numpy as np
import pytest

from repro.tensor import RowSparseGrad
from repro.tensor.rowsparse import add_grads, grad_to_dense

NUM_TRIALS = 40


def _random_sparse(rng, num_rows, row_shape, dtype=np.float64):
    """A random RowSparseGrad with duplicate-prone indices + its dense twin."""
    nnz = int(rng.integers(0, 2 * num_rows + 1))
    # draw from a narrow id range so duplicates are common, not rare
    indices = rng.integers(0, num_rows, size=nnz)
    values = rng.standard_normal((nnz,) + row_shape).astype(dtype)
    dense = np.zeros((num_rows,) + row_shape, dtype=dtype)
    np.add.at(dense, indices, values)
    return RowSparseGrad(indices, values, num_rows), dense


@pytest.mark.parametrize("trial", range(NUM_TRIALS))
def test_random_accumulation_program_matches_dense_reference(trial):
    rng = np.random.default_rng(1000 + trial)
    num_rows = int(rng.integers(1, 30))
    row_shape = tuple(rng.integers(1, 5, size=int(rng.integers(0, 3))))

    sparse_acc = None
    dense_acc = None
    for _ in range(int(rng.integers(1, 8))):
        op = rng.choice(["sparse", "dense", "scale"])
        if op == "scale" and sparse_acc is not None:
            factor = float(rng.normal())
            sparse_acc = sparse_acc * factor
            dense_acc = dense_acc * factor
            continue
        if op == "dense":
            term = rng.standard_normal((num_rows,) + row_shape)
            sparse_acc = term if sparse_acc is None else add_grads(sparse_acc, term)
            dense_acc = term if dense_acc is None else dense_acc + term
            continue
        sparse, dense = _random_sparse(rng, num_rows, row_shape)
        sparse_acc = sparse if sparse_acc is None else add_grads(sparse_acc, sparse)
        dense_acc = dense if dense_acc is None else dense_acc + dense

    result = grad_to_dense(sparse_acc)
    assert result.shape == dense_acc.shape
    np.testing.assert_allclose(result, dense_acc, rtol=1e-12, atol=1e-12)
    # sparse-only programs must not have densified along the way
    if isinstance(sparse_acc, RowSparseGrad):
        assert sparse_acc.nnz_rows <= num_rows
        assert np.unique(sparse_acc.indices).size == sparse_acc.nnz_rows


@pytest.mark.parametrize("trial", range(NUM_TRIALS))
def test_sparse_plus_sparse_stays_sparse_and_exact(trial):
    """Sparse + sparse must coalesce bit-exactly vs np.add.at ordering."""
    rng = np.random.default_rng(2000 + trial)
    num_rows = int(rng.integers(1, 25))
    dim = int(rng.integers(1, 6))
    a, dense_a = _random_sparse(rng, num_rows, (dim,))
    b, dense_b = _random_sparse(rng, num_rows, (dim,))
    total = a + b
    assert isinstance(total, RowSparseGrad)
    # exact: both sides sum per-row contributions in first-seen order
    np.testing.assert_array_equal(total.to_dense(), dense_a + dense_b)


@pytest.mark.parametrize("trial", range(20))
def test_sparse_plus_dense_densifies_exactly(trial):
    rng = np.random.default_rng(3000 + trial)
    num_rows = int(rng.integers(1, 25))
    sparse, dense_twin = _random_sparse(rng, num_rows, (3,))
    other = rng.standard_normal((num_rows, 3))
    for mixed in (sparse + other, other + sparse,
                  add_grads(sparse, other), add_grads(other, sparse)):
        assert isinstance(mixed, np.ndarray)
        np.testing.assert_array_equal(mixed, dense_twin + other)


@pytest.mark.parametrize("trial", range(20))
def test_duplicate_heavy_batches_coalesce(trial):
    """All-duplicate index batches (the worst case) coalesce correctly."""
    rng = np.random.default_rng(4000 + trial)
    num_rows = int(rng.integers(2, 10))
    row = int(rng.integers(0, num_rows))
    reps = int(rng.integers(1, 50))
    values = rng.standard_normal((reps, 2))
    grad = RowSparseGrad(np.full(reps, row), values, num_rows)
    assert grad.nnz_rows == 1
    np.testing.assert_allclose(grad.values[0], values.sum(axis=0),
                               rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("trial", range(20))
def test_scalar_scaling_and_norm(trial):
    rng = np.random.default_rng(5000 + trial)
    sparse, dense = _random_sparse(rng, int(rng.integers(1, 20)), (4,))
    factor = float(rng.normal())
    np.testing.assert_allclose((factor * sparse).to_dense(), factor * dense,
                               rtol=1e-12, atol=1e-12)
    np.testing.assert_allclose(sparse.sq_norm(), float(np.sum(dense * dense)),
                               rtol=1e-12)


def test_shape_mismatches_rejected():
    grad = RowSparseGrad([0], np.ones((1, 2)), 5)
    with pytest.raises(ValueError):
        grad + RowSparseGrad([0], np.ones((1, 3)), 5)
    with pytest.raises(ValueError):
        grad + np.ones((5, 3))
    with pytest.raises(ValueError):
        RowSparseGrad([0, 1], np.ones((3, 2)), 5)
    with pytest.raises(IndexError):
        RowSparseGrad([5], np.ones((1, 2)), 5)

"""Gradient checks for every primitive op in the autograd engine."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients
from repro.tensor.tensor import concat, stack, where

RNG = np.random.default_rng(0)


def t(shape, requires_grad=True):
    return Tensor(RNG.standard_normal(shape), requires_grad=requires_grad)


class TestElementwise:
    def test_add_same_shape(self):
        check_gradients(lambda a, b: a + b, [t((3, 4)), t((3, 4))])

    def test_add_broadcast_vector(self):
        check_gradients(lambda a, b: a + b, [t((3, 4)), t((4,))])

    def test_add_broadcast_scalar_tensor(self):
        check_gradients(lambda a, b: a + b, [t((3, 4)), t(())])

    def test_add_python_scalar(self):
        check_gradients(lambda a: a + 2.5, [t((2, 3))])

    def test_radd(self):
        check_gradients(lambda a: 2.5 + a, [t((2, 3))])

    def test_sub(self):
        check_gradients(lambda a, b: a - b, [t((3, 2)), t((3, 2))])

    def test_rsub(self):
        check_gradients(lambda a: 1.0 - a, [t((3, 2))])

    def test_neg(self):
        check_gradients(lambda a: -a, [t((4,))])

    def test_mul_broadcast_keepdim(self):
        check_gradients(lambda a, b: a * b, [t((3, 4)), t((3, 1))])

    def test_div(self):
        a, b = t((3, 3)), t((3, 3))
        b.data = b.data + 3.0 * np.sign(b.data)  # keep away from zero
        check_gradients(lambda a, b: a / b, [a, b])

    def test_rdiv(self):
        a = t((3,))
        a.data = a.data + 3.0 * np.sign(a.data)
        check_gradients(lambda a: 2.0 / a, [a])

    def test_pow(self):
        a = t((3, 3))
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda a: a ** 3, [a])
        check_gradients(lambda a: a ** 0.5, [a])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            t((2,)) ** t((2,))


class TestUnary:
    def test_exp(self):
        check_gradients(lambda a: a.exp(), [t((3, 3))])

    def test_log(self):
        a = t((3, 3))
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda a: a.log(), [a])

    def test_sqrt(self):
        a = t((3, 3))
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda a: a.sqrt(), [a])

    def test_abs(self):
        a = t((3, 3))
        a.data = a.data + 0.5 * np.sign(a.data)  # keep away from kink
        check_gradients(lambda a: a.abs(), [a])

    def test_relu(self):
        a = t((4, 4))
        a.data = a.data + 0.3 * np.sign(a.data)
        check_gradients(lambda a: a.relu(), [a])

    def test_leaky_relu(self):
        a = t((4, 4))
        a.data = a.data + 0.3 * np.sign(a.data)
        check_gradients(lambda a: a.leaky_relu(0.1), [a])

    def test_sigmoid(self):
        check_gradients(lambda a: a.sigmoid(), [t((3, 4))])

    def test_tanh(self):
        check_gradients(lambda a: a.tanh(), [t((3, 4))])

    def test_clip(self):
        a = t((5, 5))
        check_gradients(lambda a: a.clip(-0.5, 0.5), [a], eps=1e-7)

    def test_maximum(self):
        a, b = t((3, 3)), t((3, 3))
        b.data = a.data + np.where(RNG.random((3, 3)) > 0.5, 0.7, -0.7)
        check_gradients(lambda a, b: a.maximum(b), [a, b])

    def test_minimum(self):
        a, b = t((3, 3)), t((3, 3))
        b.data = a.data + np.where(RNG.random((3, 3)) > 0.5, 0.7, -0.7)
        check_gradients(lambda a, b: a.minimum(b), [a, b])


class TestReductions:
    def test_sum_all(self):
        check_gradients(lambda a: a.sum(), [t((3, 4))])

    def test_sum_axis(self):
        check_gradients(lambda a: a.sum(axis=0), [t((3, 4))])
        check_gradients(lambda a: a.sum(axis=1, keepdims=True), [t((3, 4))])

    def test_sum_multi_axis(self):
        check_gradients(lambda a: a.sum(axis=(0, 2)), [t((2, 3, 4))])

    def test_sum_negative_axis(self):
        check_gradients(lambda a: a.sum(axis=-1), [t((2, 3))])

    def test_mean(self):
        check_gradients(lambda a: a.mean(), [t((3, 4))])
        check_gradients(lambda a: a.mean(axis=1), [t((3, 4))])

    def test_mean_value(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert float(a.mean().data) == pytest.approx(2.5)

    def test_max_axis(self):
        a = t((4, 5))
        check_gradients(lambda a: a.max(axis=1), [a])

    def test_max_all(self):
        check_gradients(lambda a: a.max(), [t((4, 5))])

    def test_min(self):
        check_gradients(lambda a: a.min(axis=0), [t((4, 5))])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([[2.0, 2.0, 1.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])


class TestMatmul:
    def test_matrix_matrix(self):
        check_gradients(lambda a, b: a.matmul(b), [t((3, 5)), t((5, 2))])

    def test_matmul_operator(self):
        check_gradients(lambda a, b: a @ b, [t((3, 5)), t((5, 2))])

    def test_vector_vector(self):
        check_gradients(lambda a, b: a.matmul(b), [t((4,)), t((4,))])

    def test_vector_matrix(self):
        check_gradients(lambda a, b: a.matmul(b), [t((4,)), t((4, 3))])

    def test_matrix_vector(self):
        check_gradients(lambda a, b: a.matmul(b), [t((3, 4)), t((4,))])

    def test_batched(self):
        check_gradients(lambda a, b: a.matmul(b), [t((2, 3, 4)), t((2, 4, 5))])

    def test_batched_4d(self):
        check_gradients(lambda a, b: a.matmul(b), [t((2, 2, 3, 4)), t((2, 2, 4, 3))])

    def test_batched_times_vector(self):
        check_gradients(lambda a, b: a.matmul(b), [t((2, 3, 4)), t((4,))])

    def test_matrix_broadcast_into_batch(self):
        check_gradients(lambda a, b: a.matmul(b), [t((3, 4)), t((5, 4, 2))])


class TestShapeOps:
    def test_reshape(self):
        check_gradients(lambda a: a.reshape(6, 2), [t((3, 4))])
        check_gradients(lambda a: a.reshape((2, 6)), [t((3, 4))])

    def test_transpose_default(self):
        check_gradients(lambda a: a.transpose(), [t((3, 4))])

    def test_transpose_axes(self):
        check_gradients(lambda a: a.transpose(1, 0, 2), [t((2, 3, 4))])

    def test_swapaxes(self):
        check_gradients(lambda a: a.swapaxes(-1, -2), [t((2, 3, 4))])

    def test_squeeze_expand(self):
        check_gradients(lambda a: a.squeeze(1), [t((3, 1, 4))])
        check_gradients(lambda a: a.expand_dims(0), [t((3, 4))])

    def test_getitem_slice(self):
        check_gradients(lambda a: a[1:3], [t((5, 4))])

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        check_gradients(lambda a: a[idx], [t((5, 4))])

    def test_getitem_pair_index(self):
        rows = np.array([0, 1, 2])
        cols = np.array([1, 0, 3])
        check_gradients(lambda a: a[rows, cols], [t((4, 4))])

    def test_gather_rows_duplicates_accumulate(self):
        a = Tensor(np.eye(3), requires_grad=True)
        idx = np.array([1, 1, 1])
        a.gather_rows(idx).sum().backward()
        np.testing.assert_allclose(a.grad[1], [3.0, 3.0, 3.0])
        np.testing.assert_allclose(a.grad[0], 0.0)

    def test_gather_rows_nd_indices(self):
        idx = np.array([[0, 1], [2, 0]])
        out = t((3, 4)).gather_rows(idx)
        assert out.shape == (2, 2, 4)
        check_gradients(lambda a: a.gather_rows(idx), [t((3, 4))])

    def test_concat(self):
        check_gradients(lambda a, b: concat([a, b], axis=0), [t((2, 3)), t((4, 3))])
        check_gradients(lambda a, b: concat([a, b], axis=1), [t((2, 3)), t((2, 2))])

    def test_stack(self):
        check_gradients(lambda a, b: stack([a, b], axis=0), [t((2, 3)), t((2, 3))])
        check_gradients(lambda a, b: stack([a, b], axis=-1), [t((2, 3)), t((2, 3))])

    def test_where(self):
        cond = RNG.random((3, 3)) > 0.5
        check_gradients(lambda a, b: where(cond, a, b), [t((3, 3)), t((3, 3))])

"""Tests of the sparse adjacency substrate."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import SparseAdjacency, Tensor, check_gradients


@pytest.fixture
def adjacency():
    return SparseAdjacency(sp.random(6, 8, density=0.35, random_state=4))


class TestConstruction:
    def test_from_dense(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0]])
        a = SparseAdjacency(dense)
        np.testing.assert_allclose(a.to_dense(), dense)

    def test_shape_nnz(self, adjacency):
        assert adjacency.shape == (6, 8)
        assert adjacency.nnz > 0

    def test_transpose(self, adjacency):
        np.testing.assert_allclose(adjacency.T.to_dense(), adjacency.to_dense().T)


class TestNormalization:
    def test_row_normalized_rows_sum_to_one(self):
        a = SparseAdjacency(np.array([[1.0, 1.0], [2.0, 0.0], [0.0, 0.0]]))
        normalized = a.normalized("row").to_dense()
        np.testing.assert_allclose(normalized.sum(axis=1), [1.0, 1.0, 0.0])

    def test_sym_normalization(self):
        dense = np.array([[1.0, 1.0], [1.0, 0.0]])
        a = SparseAdjacency(dense).normalized("sym").to_dense()
        # entry (0,0): 1/sqrt(2)/sqrt(2) = 0.5
        assert a[0, 0] == pytest.approx(0.5)

    def test_unknown_mode_raises(self, adjacency):
        with pytest.raises(ValueError):
            adjacency.normalized("bogus")

    def test_empty_rows_stay_zero(self):
        a = SparseAdjacency(np.zeros((3, 3))).normalized("row")
        np.testing.assert_allclose(a.to_dense(), 0.0)


class TestMatmul:
    def test_forward_matches_dense(self, adjacency, rng):
        h = rng.standard_normal((8, 4))
        out = adjacency.matmul(Tensor(h)).data
        np.testing.assert_allclose(out, adjacency.to_dense() @ h)

    def test_matmul_operator(self, adjacency, rng):
        h = Tensor(rng.standard_normal((8, 4)))
        np.testing.assert_allclose((adjacency @ h).data, adjacency.matmul(h).data)

    def test_gradient(self, adjacency, rng):
        h = Tensor(rng.standard_normal((8, 3)), requires_grad=True)
        check_gradients(lambda h: adjacency.matmul(h).tanh(), [h])

    def test_rmatmul_forward_and_grad(self, adjacency, rng):
        h = Tensor(rng.standard_normal((4, 6)), requires_grad=True)
        out = adjacency.rmatmul(h)
        np.testing.assert_allclose(out.data, h.data @ adjacency.to_dense())
        check_gradients(lambda h: adjacency.rmatmul(h), [h])

    def test_chained_propagation_gradient(self, adjacency, rng):
        h = Tensor(rng.standard_normal((8, 3)), requires_grad=True)
        check_gradients(lambda h: adjacency.T.matmul(adjacency.matmul(h)), [h])

    def test_no_gradient_when_disabled(self, adjacency, rng):
        from repro.tensor import no_grad

        h = Tensor(rng.standard_normal((8, 3)), requires_grad=True)
        with no_grad():
            out = adjacency.matmul(h)
        assert not out.requires_grad


class TestDegrees:
    def test_row_col_degrees(self):
        dense = np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 0.0]])
        a = SparseAdjacency(dense)
        np.testing.assert_allclose(a.row_degrees(), [2.0, 1.0])
        np.testing.assert_allclose(a.col_degrees(), [1.0, 2.0, 0.0])

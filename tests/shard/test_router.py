"""GradRouter: split/merge round-trips and parameter-server apply."""

import numpy as np
import pytest

from repro.shard import GradRouter, ShardSpec, ShardedEmbedding
from repro.tensor import RowSparseGrad


def _sparse_grad(num_rows=20, seed=0):
    rng = np.random.default_rng(seed)
    rows = np.array([3, 7, 3, 19, 11])
    return RowSparseGrad(rows, rng.standard_normal((rows.size, 2)), num_rows)


@pytest.mark.parametrize("strategy", ["range", "hash"])
class TestSplitMerge:
    def test_sparse_roundtrip_bit_exact(self, strategy):
        router = GradRouter(ShardSpec(20, 3, strategy))
        grad = _sparse_grad()
        merged = router.merge(router.split(grad))
        assert isinstance(merged, RowSparseGrad)
        np.testing.assert_array_equal(merged.to_dense(), grad.to_dense())

    def test_dense_roundtrip_bit_exact(self, strategy):
        router = GradRouter(ShardSpec(20, 3, strategy))
        dense = np.random.default_rng(1).standard_normal((20, 2))
        parts = router.split(dense)
        assert set(parts) == {0, 1, 2}  # dense: every shard present
        np.testing.assert_array_equal(router.merge(parts), dense)

    def test_split_is_shard_local(self, strategy):
        spec = ShardSpec(20, 3, strategy)
        router = GradRouter(spec)
        for k, piece in router.split(_sparse_grad()).items():
            assert piece.num_rows == spec.shard_rows(k).size
            assert piece.indices.max() < piece.num_rows

    def test_split_skips_untouched_shards(self, strategy):
        spec = ShardSpec(30, 10, strategy)
        grad = RowSparseGrad([0], np.ones((1, 2)), 30)
        parts = GradRouter(spec).split(grad)
        assert list(parts) == [int(spec.shard_of([0])[0])]


class TestEdges:
    def test_shape_mismatch_rejected(self):
        router = GradRouter(ShardSpec(20, 2))
        with pytest.raises(ValueError):
            router.split(RowSparseGrad([0], np.ones((1, 2)), 19))
        with pytest.raises(ValueError):
            router.split(np.zeros((19, 2)))

    def test_merge_empty_parts(self):
        merged = GradRouter(ShardSpec(20, 2)).merge({})
        assert isinstance(merged, RowSparseGrad)
        assert merged.nnz_rows == 0
        assert merged.num_rows == 20

    def test_merge_mixed_sparse_dense_densifies(self):
        spec = ShardSpec(10, 2, "range")
        router = GradRouter(spec)
        sparse_piece = RowSparseGrad([1], np.full((1, 2), 3.0), 5)
        dense_piece = np.full((5, 2), 2.0)
        merged = router.merge({0: sparse_piece, 1: dense_piece})
        assert isinstance(merged, np.ndarray)
        expected = np.zeros((10, 2))
        expected[1] = 3.0
        expected[5:] = 2.0
        np.testing.assert_array_equal(merged, expected)


class TestApply:
    @pytest.mark.parametrize("strategy", ["range", "hash"])
    def test_apply_routes_to_shard_grads(self, strategy):
        w = np.random.default_rng(2).standard_normal((20, 2))
        emb = ShardedEmbedding(w, num_shards=3, strategy=strategy)
        router = GradRouter(emb.spec)
        grad = _sparse_grad()
        router.apply(emb, grad)
        merged = router.merge(
            {k: p.grad for k, p in enumerate(emb.shards)
             if p.grad is not None})
        np.testing.assert_array_equal(merged.to_dense(), grad.to_dense())

    def test_apply_accumulates(self):
        emb = ShardedEmbedding(np.zeros((20, 2)), num_shards=2)
        router = GradRouter(emb.spec)
        grad = RowSparseGrad([0], np.ones((1, 2)), 20)
        router.apply(emb, grad)
        router.apply(emb, grad)
        assert emb.shards[0].grad.values[0][0] == 2.0

    def test_apply_spec_mismatch_rejected(self):
        emb = ShardedEmbedding(np.zeros((20, 2)), num_shards=2)
        router = GradRouter(ShardSpec(20, 2, "hash"))
        with pytest.raises(ValueError):
            router.apply(emb, _sparse_grad())

    def test_optimizer_consumes_routed_grads(self):
        """The parameter-server loop: route a wire grad, step shard-locally."""
        from repro.nn import SGD, shard_param_groups

        w = np.random.default_rng(3).standard_normal((20, 2))
        plain = w.copy()
        emb = ShardedEmbedding(w, num_shards=4, strategy="hash")
        router = GradRouter(emb.spec)
        grad = _sparse_grad()
        router.apply(emb, grad)
        opt = SGD(shard_param_groups(emb.parameters()), lr=0.1)
        for shard in opt.shards():  # each "server" steps its own rows
            opt.step(shard=shard)
        np.testing.assert_array_equal(emb.dense_table(),
                                      plain - 0.1 * grad.to_dense())

"""Property tests for K→K' reshard: migration is exact index arithmetic.

Seeded randomized coverage of :mod:`repro.shard.reshard`: random shard
counts and strategies, 1-D bias tables, shard counts exceeding the row
count (empty shards), optimizer row state riding with its rows, and the
end-to-end oracle — training resumed from a resharded training state
bit-matches training that never resharded.
"""

import numpy as np
import pytest

from repro.core import GNMR, GNMRConfig
from repro.data import leave_one_out_split, taobao_like
from repro.shard import ShardSpec
from repro.shard.reshard import (
    ReshardError,
    find_sharded_tables,
    reshard_file,
    reshard_state,
)
from repro.train.resume import load_training_state
from repro.train.trainer import TrainConfig


def split_table(base, full, spec):
    """State-dict entries for ``full`` partitioned under ``spec``."""
    return {f"{base}.shards.{k}": np.ascontiguousarray(full[spec.shard_rows(k)])
            for k in range(spec.num_shards)}


def assemble(state, base, num_shards, strategy):
    parts = [state[f"{base}.shards.{k}"] for k in range(num_shards)]
    rows = sum(p.shape[0] for p in parts)
    return ShardSpec(rows, num_shards, strategy).assemble(parts)


class TestReshardState:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_k_to_kprime_round_trips(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(8, 60))
        dim = int(rng.integers(1, 6))
        old_k = int(rng.integers(1, 8))
        new_k = int(rng.integers(1, 8))
        old_strategy, new_strategy = rng.choice(["range", "hash"], size=2)
        full = rng.standard_normal((rows, dim))
        old_spec = ShardSpec(rows, old_k, old_strategy)
        state = split_table("emb", full, old_spec)
        state["dense.weight"] = rng.standard_normal((3, 3))
        new_state, _, info = reshard_state(
            state, None, num_shards=new_k, strategy=new_strategy,
            old_strategy=old_strategy)
        np.testing.assert_array_equal(
            assemble(new_state, "emb", new_k, new_strategy), full)
        assert new_state["dense.weight"] is state["dense.weight"]
        assert info == {"emb": {"rows": rows, "old_shards": old_k}}

    def test_one_dimensional_bias_tables(self):
        rng = np.random.default_rng(3)
        full = rng.standard_normal(17)
        state = split_table("bias", full, ShardSpec(17, 3, "range"))
        new_state, _, _ = reshard_state(state, None, num_shards=5,
                                        strategy="hash",
                                        old_strategy="range")
        np.testing.assert_array_equal(assemble(new_state, "bias", 5, "hash"),
                                      full)

    def test_one_row_per_shard_boundary(self):
        """rows == K' is the thinnest legal layout; every shard holds one
        row and the round trip is still exact."""
        rng = np.random.default_rng(4)
        full = rng.standard_normal((5, 2))
        state = split_table("emb", full, ShardSpec(5, 2, "range"))
        new_state, _, _ = reshard_state(state, None, num_shards=5,
                                        strategy="hash",
                                        old_strategy="range")
        sizes = [new_state[f"emb.shards.{k}"].shape[0] for k in range(5)]
        assert sizes == [1] * 5
        np.testing.assert_array_equal(assemble(new_state, "emb", 5, "hash"),
                                      full)

    def test_more_shards_than_rows_raises_cleanly(self):
        """ShardSpec forbids empty shards (at most one shard per row);
        the reshard tool surfaces that as a ReshardError, not a bare
        ValueError from deep inside the spec arithmetic."""
        rng = np.random.default_rng(4)
        full = rng.standard_normal((3, 2))
        state = split_table("emb", full, ShardSpec(3, 2, "range"))
        with pytest.raises(ReshardError, match="cannot reshard table"):
            reshard_state(state, None, num_shards=7, strategy="range",
                          old_strategy="range")

    @pytest.mark.parametrize("seed", range(4))
    def test_optimizer_row_state_moves_with_its_rows(self, seed):
        rng = np.random.default_rng(100 + seed)
        rows, dim = 23, 4
        old_k, new_k = int(rng.integers(1, 6)), int(rng.integers(1, 6))
        full = rng.standard_normal((rows, dim))
        m_full = rng.standard_normal((rows, dim))
        v_full = rng.standard_normal((rows, dim)) ** 2
        steps_full = rng.integers(0, 50, size=rows)
        old_spec = ShardSpec(rows, old_k, "range")
        state = split_table("emb", full, old_spec)
        opt = {f"emb.shards.{k}": {
                   "m": np.ascontiguousarray(m_full[old_spec.shard_rows(k)]),
                   "v": np.ascontiguousarray(v_full[old_spec.shard_rows(k)]),
                   "row_steps": np.ascontiguousarray(
                       steps_full[old_spec.shard_rows(k)]),
                   "param_t": 50, "saw_dense": False, "hist_base": 0}
               for k in range(old_k)}
        _, new_opt, _ = reshard_state(state, opt, num_shards=new_k,
                                      strategy="hash", old_strategy="range")
        new_spec = ShardSpec(rows, new_k, "hash")
        for k in range(new_k):
            shard_rows = new_spec.shard_rows(k)
            slots = new_opt[f"emb.shards.{k}"]
            np.testing.assert_array_equal(slots["m"], m_full[shard_rows])
            np.testing.assert_array_equal(slots["v"], v_full[shard_rows])
            np.testing.assert_array_equal(slots["row_steps"],
                                          steps_full[shard_rows])
            # per-parameter clocks replicate to every new shard
            assert slots["param_t"] == 50
            assert slots["saw_dense"] is False

    def test_mixed_row_slot_presence_raises(self):
        rng = np.random.default_rng(5)
        full = rng.standard_normal((10, 2))
        old_spec = ShardSpec(10, 2, "range")
        state = split_table("emb", full, old_spec)
        opt = {"emb.shards.0": {"m": full[old_spec.shard_rows(0)] * 0,
                                "row_steps": np.zeros(5, dtype=np.int64),
                                "param_t": 3},
               "emb.shards.1": {"m": full[old_spec.shard_rows(1)] * 0,
                                "param_t": 3}}  # row_steps never materialized
        with pytest.raises(ReshardError, match="materialized"):
            reshard_state(state, opt, num_shards=3, strategy="range",
                          old_strategy="range")

    def test_out_of_lockstep_clocks_raise(self):
        rng = np.random.default_rng(6)
        full = rng.standard_normal((8, 2))
        old_spec = ShardSpec(8, 2, "range")
        state = split_table("emb", full, old_spec)
        opt = {"emb.shards.0": {"param_t": 3},
               "emb.shards.1": {"param_t": 4}}
        with pytest.raises(ReshardError, match="lockstep"):
            reshard_state(state, opt, num_shards=1, strategy="range",
                          old_strategy="range")

    def test_wrong_old_strategy_caught_by_size_check(self):
        # range and hash produce identical shard *sizes* for balanced
        # tables, so pick sizes only range produces: 5 rows over 2 shards
        rng = np.random.default_rng(7)
        state = {"emb.shards.0": rng.standard_normal((4, 2)),
                 "emb.shards.1": rng.standard_normal((1, 2))}
        with pytest.raises(ReshardError, match="owns"):
            reshard_state(state, None, num_shards=2, strategy="range",
                          old_strategy="range")

    def test_non_dense_shard_indices_raise(self):
        state = {"emb.shards.0": np.zeros((2, 2)),
                 "emb.shards.2": np.zeros((2, 2))}
        with pytest.raises(ReshardError, match="indices"):
            find_sharded_tables(state)

    def test_unsharded_state_raises(self):
        with pytest.raises(ReshardError, match="no sharded tables"):
            reshard_state({"weight": np.zeros((2, 2))}, None, num_shards=2)


class TestReshardedResumeParity:
    """The tentpole oracle: resharded resume == never resharded."""

    SPLIT = leave_one_out_split(taobao_like(num_users=40, num_items=90,
                                            seed=0))

    @classmethod
    def build(cls, shards, strategy="range"):
        return GNMR(cls.SPLIT.train,
                    GNMRConfig(pretrain=False, seed=0, num_layers=2,
                               dropout=0.0, shards=shards,
                               shard_strategy=strategy))

    @classmethod
    def config(cls, shards, epochs, save=None, optimizer="sgd"):
        return TrainConfig(epochs=epochs, steps_per_epoch=4, batch_users=8,
                           per_user=2, propagation="sampled", fanout=5,
                           seed=0, optimizer=optimizer, shards=shards,
                           save_state=save)

    def logical_tables(self, model, strategy):
        state = model.state_dict()
        tables = {}
        for base, keys in find_sharded_tables(state).items():
            parts = [state[key] for key in keys]
            rows = sum(p.shape[0] for p in parts)
            spec = ShardSpec(rows, len(parts), strategy)
            tables[base] = spec.assemble(parts)
        for key, value in state.items():
            if ".shards." not in key:
                tables[key] = value
        return tables

    @pytest.mark.parametrize("optimizer,new_k,new_strategy", [
        ("sgd", 5, "range"), ("adam", 5, "range"), ("sgd", 4, "hash"),
    ])
    def test_resume_from_resharded_state(self, tmp_path, optimizer, new_k,
                                         new_strategy):
        full = self.build(3)
        full.fit(self.SPLIT.train, self.config(3, 4, optimizer=optimizer))
        state = str(tmp_path / "state.npz")
        part = self.build(3)
        part.fit(self.SPLIT.train,
                 self.config(3, 2, save=state, optimizer=optimizer))
        out = str(tmp_path / "resharded.npz")
        info = reshard_file(state, out, new_k, strategy=new_strategy)
        assert info["format"] == "train-state"
        resumed = self.build(new_k, new_strategy)
        resumed.fit(self.SPLIT.train,
                    self.config(new_k, 4, optimizer=optimizer),
                    resume_from=out)
        expected = self.logical_tables(full, "range")
        actual = self.logical_tables(resumed, new_strategy)
        assert sorted(expected) == sorted(actual)
        for key in expected:
            np.testing.assert_array_equal(expected[key], actual[key],
                                          err_msg=key)

    def test_resharded_state_metadata_updated(self, tmp_path):
        state = str(tmp_path / "state.npz")
        part = self.build(2)
        part.fit(self.SPLIT.train, self.config(2, 1, save=state))
        out = str(tmp_path / "resharded.npz")
        reshard_file(state, out, 3)
        migrated = load_training_state(out)
        assert migrated.config["shards"] == 3
        # trainer cursor survives the migration untouched
        original = load_training_state(state)
        assert migrated.global_step == original.global_step
        assert migrated.meta["rng_state"] == original.meta["rng_state"]


class TestReshardFile:
    def test_plain_checkpoint_reshard(self, tmp_path):
        from repro.utils.checkpoint import load_arrays, save_checkpoint

        model = TestReshardedResumeParity.build(2)
        before = {base: np.array(table) for base, table in
                  TestReshardedResumeParity().logical_tables(
                      model, "range").items()}
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path, metadata={"shards": 2,
                                               "shard_strategy": "range"})
        out = str(tmp_path / "ckpt4.npz")
        info = reshard_file(path, out, 4)
        assert info["format"] == "checkpoint"
        _, meta = load_arrays(out)
        assert meta["shards"] == 4 and meta["shard_strategy"] == "range"
        rebuilt = TestReshardedResumeParity.build(4)
        from repro.utils.checkpoint import load_checkpoint

        load_checkpoint(rebuilt, out)
        after = TestReshardedResumeParity().logical_tables(rebuilt, "range")
        for key, value in before.items():
            np.testing.assert_array_equal(value, after[key], err_msg=key)

    def test_invalid_shard_count(self, tmp_path):
        with pytest.raises(ReshardError, match=">= 1"):
            reshard_file(str(tmp_path / "x.npz"), str(tmp_path / "y.npz"), 0)

    def test_cli_reshard_reports_and_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        split = TestReshardedResumeParity.SPLIT
        model = TestReshardedResumeParity.build(2)
        path = str(tmp_path / "ckpt.npz")
        from repro.utils.checkpoint import save_checkpoint

        save_checkpoint(model, path, metadata={"shards": 2,
                                               "shard_strategy": "range"})
        assert main(["reshard", "--checkpoint", path, "--shards", "3"]) == 0
        out = capsys.readouterr().out
        assert "resharded checkpoint to 3 range shards" in out
        # unsharded checkpoint → clean error, not a traceback
        bare = str(tmp_path / "bare.npz")
        from repro.models import BiasMF

        save_checkpoint(BiasMF(split.train.num_users, split.train.num_items,
                               seed=0), bare)
        assert main(["reshard", "--checkpoint", bare, "--shards", "2"]) == 1
        assert "no sharded tables" in capsys.readouterr().err

"""ShardedEmbedding: forward parity, sparse backward, module integration."""

import numpy as np
import pytest

from repro.nn import Adam, Embedding, Parameter, SGD, shard_param_groups
from repro.shard import (
    ShardSpec,
    ShardedEmbedding,
    table_array,
    table_parameters,
    table_rows,
    table_tensor,
)
from repro.tensor import RowSparseGrad


def _table(shape=(13, 4), seed=0):
    return np.random.default_rng(seed).standard_normal(shape)


@pytest.mark.parametrize("strategy", ["range", "hash"])
@pytest.mark.parametrize("num_shards", [1, 2, 5])
class TestForwardParity:
    def test_dense_table_bit_matches_source(self, strategy, num_shards):
        w = _table()
        emb = ShardedEmbedding(w, num_shards=num_shards, strategy=strategy)
        np.testing.assert_array_equal(emb.dense_table(), w)
        np.testing.assert_array_equal(emb.all().data, w)

    def test_rows_bit_matches_unsharded_gather(self, strategy, num_shards):
        w = _table()
        emb = ShardedEmbedding(w, num_shards=num_shards, strategy=strategy)
        idx = np.array([12, 0, 7, 7, 3, 0])
        np.testing.assert_array_equal(emb.rows(idx).data, w[idx])
        np.testing.assert_array_equal(emb.embedding_rows(idx).data, w[idx])

    def test_forward_any_index_shape(self, strategy, num_shards):
        w = _table()
        emb = ShardedEmbedding(w, num_shards=num_shards, strategy=strategy)
        idx = np.array([[0, 5], [11, 5]])
        np.testing.assert_array_equal(emb(idx).data, w[idx])

    def test_one_dim_bias_table(self, strategy, num_shards):
        b = _table(shape=(9,), seed=1)
        emb = ShardedEmbedding(b, num_shards=num_shards, strategy=strategy)
        assert emb.row_shape == ()
        assert emb.embedding_dim is None
        idx = np.array([8, 0, 4, 4])
        np.testing.assert_array_equal(emb.rows(idx).data, b[idx])
        np.testing.assert_array_equal(emb.dense_table(), b)

    def test_empty_batch(self, strategy, num_shards):
        emb = ShardedEmbedding(_table(), num_shards=num_shards,
                               strategy=strategy)
        out = emb.rows(np.empty(0, dtype=np.int64))
        assert out.data.shape == (0, 4)


class TestBackward:
    @pytest.mark.parametrize("strategy", ["range", "hash"])
    def test_rows_backward_is_per_shard_rowsparse(self, strategy):
        w = _table()
        emb = ShardedEmbedding(w, num_shards=3, strategy=strategy)
        idx = np.array([0, 7, 3, 7, 12, 1])
        emb.rows(idx).sum().backward()
        seen_rows = 0
        for k, p in enumerate(emb.shards):
            if p.grad is None:
                continue
            assert isinstance(p.grad, RowSparseGrad)
            seen_rows += p.grad.nnz_rows
        assert seen_rows == np.unique(idx).size

    @pytest.mark.parametrize("strategy", ["range", "hash"])
    def test_rows_backward_matches_unsharded(self, strategy):
        w = _table()
        plain = Parameter(w.copy(), name="ref")
        emb = ShardedEmbedding(w, num_shards=4, strategy=strategy)
        idx = np.array([0, 7, 3, 7, 12, 1, 1])
        (plain.embedding_rows(idx) * 2.0).sum().backward()
        (emb.rows(idx) * 2.0).sum().backward()
        merged = np.zeros_like(w)
        for k, p in enumerate(emb.shards):
            if p.grad is not None:
                merged[emb.spec.shard_rows(k)] += p.grad.to_dense()
        np.testing.assert_array_equal(merged, plain.grad.to_dense())

    def test_all_backward_splits_dense_grads(self):
        w = _table()
        emb = ShardedEmbedding(w, num_shards=2, strategy="hash")
        (emb.all() * 3.0).sum().backward()
        for k, p in enumerate(emb.shards):
            np.testing.assert_array_equal(
                p.grad, np.full(p.data.shape, 3.0))


class TestModuleIntegration:
    def test_parameters_are_the_shards(self):
        emb = ShardedEmbedding(_table(), num_shards=3, name="table")
        params = emb.parameters()
        assert len(params) == 3
        assert [p.shard for p in params] == [0, 1, 2]
        names = [name for name, _ in emb.named_parameters()]
        assert names == ["shards.0", "shards.1", "shards.2"]

    def test_state_dict_roundtrip(self):
        emb = ShardedEmbedding(_table(), num_shards=3, strategy="hash")
        state = emb.state_dict()
        other = ShardedEmbedding(np.zeros((13, 4)), num_shards=3,
                                 strategy="hash")
        other.load_state_dict(state)
        np.testing.assert_array_equal(other.dense_table(), emb.dense_table())

    def test_init_matches_nn_embedding_stream(self):
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        layer = Embedding(11, 6, rng=rng_a)
        sharded = ShardedEmbedding.init(11, 6, rng_b, num_shards=3)
        np.testing.assert_array_equal(sharded.dense_table(),
                                      layer.weight.data)
        # identical post-init stream: sharding drew exactly the same numbers
        assert rng_a.random() == rng_b.random()

    def test_shard_param_groups(self):
        emb = ShardedEmbedding(_table(), num_shards=2)
        dense = Parameter(np.zeros(3), name="w")
        groups = shard_param_groups([dense, *emb.parameters()])
        assert [g["shard"] for g in groups] == [None, 0, 1]
        assert groups[0]["params"] == [dense]

    def test_optimizer_step_per_shard(self):
        w = _table()
        emb = ShardedEmbedding(w, num_shards=2)
        opt = SGD(shard_param_groups(emb.parameters()), lr=0.5)
        assert opt.shards() == [0, 1]
        for p in emb.shards:
            p.grad = np.ones_like(p.data)
        opt.step(shard=0)
        np.testing.assert_array_equal(emb.shards[0].data,
                                      w[emb.spec.shard_rows(0)] - 0.5)
        np.testing.assert_array_equal(emb.shards[1].data,
                                      w[emb.spec.shard_rows(1)])
        opt.step(shard=1)
        np.testing.assert_array_equal(emb.dense_table(), w - 0.5)
        with pytest.raises(ValueError):
            opt.step(shard=9)

    def test_adam_row_counters_stay_shard_local(self):
        emb = ShardedEmbedding(_table(), num_shards=2)
        opt = Adam(shard_param_groups(emb.parameters()), lr=0.1)
        rows = np.array([0, 12])  # one row per shard under range split
        emb.rows(rows).sum().backward()
        opt.step()
        for i, p in enumerate(opt.parameters):
            counts = opt._row_steps[i]
            assert counts is not None
            assert counts.size == p.data.shape[0]  # shard-sized, not table

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedEmbedding(np.zeros(()))  # 0-d weight
        with pytest.raises(ValueError):
            ShardedEmbedding(np.zeros((4, 2)), spec=ShardSpec(5, 1))
        with pytest.raises(ValueError):
            ShardedEmbedding(np.zeros((4, 2)), num_shards=2).rows(
                np.zeros((2, 2), dtype=np.int64))


class TestTableAdapters:
    def test_adapters_cover_all_table_kinds(self):
        w = _table()
        param = Parameter(w.copy(), name="p")
        layer = Embedding(13, 4)
        layer.weight.data = w.copy()
        sharded = ShardedEmbedding(w, num_shards=3)
        idx = np.array([1, 5, 5, 12])
        for table in (param, layer, sharded):
            np.testing.assert_array_equal(table_rows(table, idx).data, w[idx])
            np.testing.assert_array_equal(table_array(table), w)
        np.testing.assert_array_equal(table_tensor(param).data, w)
        np.testing.assert_array_equal(table_tensor(layer.weight).data, w)
        np.testing.assert_array_equal(table_tensor(sharded).data, w)
        assert table_parameters(param) == [param]
        assert table_parameters(layer) == [layer.weight]
        assert table_parameters(sharded) == sharded.shards

"""ShardSpec: partition arithmetic, routing, assembly round-trips."""

import numpy as np
import pytest

from repro.shard import ShardSpec, STRATEGIES


class TestValidation:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ShardSpec(-1, 1)
        with pytest.raises(ValueError):
            ShardSpec(10, 0)
        with pytest.raises(ValueError):
            ShardSpec(3, 5)  # more shards than rows
        with pytest.raises(ValueError):
            ShardSpec(10, 2, strategy="roundrobin")

    def test_row_range_checked(self):
        spec = ShardSpec(10, 2)
        with pytest.raises(IndexError):
            spec.shard_of([10])
        with pytest.raises(IndexError):
            spec.local_of([-1])
        with pytest.raises(IndexError):
            spec.shard_rows(2)
        with pytest.raises(IndexError):
            spec.shard_rows(-1)

    def test_equality_and_hash(self):
        assert ShardSpec(10, 2) == ShardSpec(10, 2)
        assert ShardSpec(10, 2) != ShardSpec(10, 2, "hash")
        assert ShardSpec(10, 2) != ShardSpec(11, 2)
        assert hash(ShardSpec(10, 2)) == hash(ShardSpec(10, 2))
        assert ShardSpec(10, 2) != object()


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestPartition:
    def test_rows_partition_exactly(self, strategy):
        spec = ShardSpec(23, 5, strategy)
        owned = np.concatenate([spec.shard_rows(k) for k in range(5)])
        assert sorted(owned.tolist()) == list(range(23))
        assert sum(spec.shard_sizes()) == 23
        # balanced: sizes differ by at most one
        sizes = spec.shard_sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_shard_rows_ascending(self, strategy):
        spec = ShardSpec(17, 4, strategy)
        for k in range(4):
            rows = spec.shard_rows(k)
            assert (np.diff(rows) > 0).all()

    def test_local_of_inverts_shard_rows(self, strategy):
        spec = ShardSpec(29, 3, strategy)
        rows = np.arange(29)
        shards = spec.shard_of(rows)
        local = spec.local_of(rows)
        for r, k, lo in zip(rows, shards, local):
            assert spec.shard_rows(k)[lo] == r

    def test_single_shard_is_identity(self, strategy):
        spec = ShardSpec(8, 1, strategy)
        np.testing.assert_array_equal(spec.shard_of(np.arange(8)), 0)
        np.testing.assert_array_equal(spec.local_of(np.arange(8)),
                                      np.arange(8))

    def test_split_routes_with_positions(self, strategy):
        spec = ShardSpec(12, 3, strategy)
        batch = np.array([11, 0, 5, 5, 7, 2])  # duplicates stay duplicated
        routed = spec.split(batch)
        covered = np.zeros(batch.size, dtype=bool)
        for k, local, positions in routed:
            np.testing.assert_array_equal(spec.shard_rows(k)[local],
                                          batch[positions])
            assert not covered[positions].any()
            covered[positions] = True
        assert covered.all()

    def test_assemble_roundtrip(self, strategy):
        rng = np.random.default_rng(0)
        table = rng.standard_normal((19, 3))
        spec = ShardSpec(19, 4, strategy)
        parts = [table[spec.shard_rows(k)] for k in range(4)]
        np.testing.assert_array_equal(spec.assemble(parts), table)

    def test_assemble_validates(self, strategy):
        spec = ShardSpec(10, 2, strategy)
        with pytest.raises(ValueError):
            spec.assemble([np.zeros((5, 2))])  # wrong part count
        with pytest.raises(ValueError):
            spec.assemble([np.zeros((4, 2)), np.zeros((6, 2))])


class TestStrategies:
    def test_range_is_contiguous(self):
        spec = ShardSpec(10, 3, "range")
        assert spec.shard_rows(0).tolist() == [0, 1, 2, 3]
        assert spec.shard_rows(1).tolist() == [4, 5, 6]
        assert spec.shard_rows(2).tolist() == [7, 8, 9]

    def test_hash_is_modulo(self):
        spec = ShardSpec(10, 3, "hash")
        assert spec.shard_rows(0).tolist() == [0, 3, 6, 9]
        assert spec.shard_rows(1).tolist() == [1, 4, 7]
        np.testing.assert_array_equal(spec.shard_of([0, 1, 2, 3]),
                                      [0, 1, 2, 0])

    def test_hash_balances_prefix_load(self):
        # the reason hash exists: the "hot" low ids spread across shards
        spec = ShardSpec(100, 4, "hash")
        hot = np.arange(20)  # a skewed workload hitting low ids only
        counts = np.bincount(spec.shard_of(hot), minlength=4)
        assert counts.tolist() == [5, 5, 5, 5]

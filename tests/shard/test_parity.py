"""The sharded-table bit-parity contract, end to end.

ISSUE-5 acceptance criteria, each enforced here:

* ``shards=1`` bit-matches the unsharded path on the float64 goldens
  (the same recorded scores ``tests/tensor/test_dtype.py`` pins for the
  plain models);
* ``shards=K`` matches ``shards=1`` *exactly* under SGD;
* under Adam, ``shards=K`` matches within the documented tolerance
  (``docs/training.md``: 1e-12 on float64 parameters — the lazy per-row
  updates make it bit-exact in practice, which the test also records).
"""

import numpy as np
import pytest

from repro.core import GNMR, GNMRConfig
from repro.data import leave_one_out_split, taobao_like
from repro.models import BiasMF, NCFGMF, NGCF, NeuMF
from repro.serve import EmbeddingStore
from repro.shard import table_array
from repro.train import TrainConfig, Trainer

#: documented Adam parity tolerance on float64 parameters (see
#: docs/training.md "Sharded embedding tables")
ADAM_TOL = 1e-12


@pytest.fixture(scope="module")
def tiny_split():
    return leave_one_out_split(taobao_like(num_users=50, num_items=120, seed=0))


def _train_gnmr(split, shards, *, propagation="sampled", optimizer="adam",
                strategy="range", epochs=2):
    config = GNMRConfig(pretrain=False, seed=0, num_layers=2, dropout=0.0,
                        shards=shards, shard_strategy=strategy)
    model = GNMR(split.train, config)
    tc = TrainConfig(epochs=epochs, steps_per_epoch=4, batch_users=8,
                     per_user=2, propagation=propagation, fanout=5, seed=0,
                     optimizer=optimizer, shards=shards)
    losses = Trainer(model, split.train, tc).run().series("loss")
    return model, losses


def _tables(model):
    return (table_array(model.user_embeddings),
            table_array(model.item_embeddings))


class TestGoldenParity:
    """shards=1 (and K) reproduce the recorded float64 seed goldens.

    The golden arrays are the ones ``tests/tensor/test_dtype.py`` pins for
    the *unsharded* models (same dataset, same seed) — scoring through the
    sharded tables must reproduce them bit for bit.
    """

    GNMR_GOLDEN = np.array([
        0.32729831588482305, -0.037324087565587964, -0.07302223270344582,
        -0.04509849138475442, 0.2542494706788363, 0.522932900736781,
        -0.018301873393090477, 0.37108517224946636,
    ])
    NGCF_GOLDEN = np.array([
        0.021098157681668374, -0.12854861938771572, 0.15116226220590295,
        -0.03985173114034231, 0.06980060167427604, -0.10979619558273532,
        0.06382377564325978, -0.1428940685413741,
    ])

    @pytest.fixture(scope="class")
    def golden_dataset(self):
        return taobao_like(num_users=40, num_items=60, seed=3)

    @pytest.mark.parametrize("shards", [1, 3])
    def test_gnmr_scores_match_float64_golden(self, golden_dataset, shards):
        model = GNMR(golden_dataset,
                     GNMRConfig(pretrain=False, seed=0, num_layers=2,
                                shards=shards))
        model.eval()
        scores = model.score(np.arange(8), np.arange(8, 16))
        assert (scores == self.GNMR_GOLDEN).all(), (
            f"shards={shards} broke float64 golden parity: max diff "
            f"{np.abs(scores - self.GNMR_GOLDEN).max():.3e}")

    @pytest.mark.parametrize("shards", [1, 2])
    def test_ngcf_scores_match_float64_golden(self, golden_dataset, shards):
        model = NGCF(golden_dataset, embedding_dim=8, num_layers=2, seed=0,
                     shards=shards)
        model.eval()
        scores = model.score(np.arange(8), np.arange(8, 16))
        assert (scores == self.NGCF_GOLDEN).all()


class TestTrainingParity:
    """Whole training runs: sharded vs unsharded state, per optimizer."""

    def test_shards1_bit_matches_unsharded_trajectory(self, tiny_split):
        plain, losses_plain = _train_gnmr(tiny_split, None)
        model_1, losses_1 = _train_gnmr(tiny_split, 1)
        assert losses_plain == losses_1
        for a, b in zip(_tables(plain), _tables(model_1)):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("strategy", ["range", "hash"])
    @pytest.mark.parametrize("propagation", ["full", "sampled", "async"])
    def test_shardsK_exact_under_sgd(self, tiny_split, strategy, propagation):
        ref, _ = _train_gnmr(tiny_split, 1, optimizer="sgd",
                             propagation=propagation)
        sharded, _ = _train_gnmr(tiny_split, 3, optimizer="sgd",
                                 strategy=strategy, propagation=propagation)
        for a, b in zip(_tables(ref), _tables(sharded)):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("propagation", ["sampled", "async"])
    def test_shardsK_within_tolerance_under_adam(self, tiny_split,
                                                 propagation):
        ref, _ = _train_gnmr(tiny_split, 1, optimizer="adam",
                             propagation=propagation)
        sharded, _ = _train_gnmr(tiny_split, 3, optimizer="adam",
                                 propagation=propagation)
        for a, b in zip(_tables(ref), _tables(sharded)):
            assert np.max(np.abs(a - b)) <= ADAM_TOL

    def test_baselines_sampled_parity_under_sgd(self, tiny_split):
        data = tiny_split.train

        def run(model):
            tc = TrainConfig(epochs=2, steps_per_epoch=4, batch_users=8,
                             per_user=2, propagation="sampled", seed=0,
                             optimizer="sgd")
            Trainer(model, data, tc).run()
            return model.state_dict()

        makers = {
            "BiasMF": lambda s: BiasMF(data.num_users, data.num_items,
                                       seed=0, shards=s),
            "NCF-G": lambda s: NCFGMF(data.num_users, data.num_items,
                                      seed=0, shards=s),
            "NCF-N": lambda s: NeuMF(data.num_users, data.num_items,
                                     seed=0, shards=s),
            "NGCF": lambda s: NGCF(data, seed=0, num_layers=1, shards=s),
        }
        for name, make in makers.items():
            plain = run(make(None))
            sharded = run(make(2))
            # state-dict keys differ (per-shard blocks); compare by scoring
            model_a, model_b = make(None), make(2)
            model_a.load_state_dict(plain)
            model_b.load_state_dict(sharded)
            users = np.arange(10)
            items = np.arange(10, 20)
            np.testing.assert_array_equal(
                model_a.score(users, items), model_b.score(users, items),
                err_msg=f"{name}: sharded SGD diverged from unsharded")


class TestServingFromShards:
    def test_snapshot_assembled_from_shard_tables(self, tiny_split):
        model, _ = _train_gnmr(tiny_split, 2, epochs=1)
        user_matrix, item_matrix = model.serving_embeddings()
        # pretend the shard-local order-0 tables live on K servers
        store = EmbeddingStore.from_shards(
            model.user_embeddings, model.item_embeddings, dtype="float64",
            source="shard-test")
        np.testing.assert_array_equal(store.user_matrix,
                                      model.user_embeddings.dense_table())
        assert store.num_users == tiny_split.train.num_users

    def test_snapshot_from_raw_blocks(self):
        from repro.shard import ShardSpec

        rng = np.random.default_rng(0)
        users = rng.standard_normal((10, 4))
        items = rng.standard_normal((15, 4))
        user_spec, item_spec = ShardSpec(10, 2), ShardSpec(15, 3, "hash")
        store = EmbeddingStore.from_shards(
            [users[user_spec.shard_rows(k)] for k in range(2)],
            [items[item_spec.shard_rows(k)] for k in range(3)],
            user_spec=user_spec, item_spec=item_spec, dtype="float64")
        np.testing.assert_array_equal(store.user_matrix, users)
        np.testing.assert_array_equal(store.item_matrix, items)
        # snapshot bit-matches the unsharded one (before any dtype cast)
        ref = EmbeddingStore(users, items, dtype="float64")
        np.testing.assert_array_equal(store.item_matrix, ref.item_matrix)

    def test_raw_blocks_require_spec(self):
        with pytest.raises(ValueError):
            EmbeddingStore.from_shards([np.zeros((5, 2))], [np.zeros((5, 2))])


class TestCheckpointRoundtrip:
    def test_sharded_checkpoint_restores(self, tmp_path, tiny_split):
        from repro.utils import load_checkpoint, save_checkpoint

        model, _ = _train_gnmr(tiny_split, 2, epochs=1)
        path = save_checkpoint(model, tmp_path / "sharded.npz",
                               metadata={"shards": 2})
        clone = GNMR(tiny_split.train,
                     GNMRConfig(pretrain=False, seed=1, num_layers=2,
                                dropout=0.0, shards=2))
        meta = load_checkpoint(clone, path)
        assert meta["shards"] == 2
        for a, b in zip(_tables(model), _tables(clone)):
            np.testing.assert_array_equal(a, b)

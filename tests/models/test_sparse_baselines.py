"""Row-sparse sampled paths of the embedding-table baselines (BiasMF, NCF)."""

import numpy as np
import pytest

from repro.models import BiasMF
from repro.models.ncf import NCFGMF, NCFMLP, NeuMF
from repro.tensor import RowSparseGrad, grad_to_dense

ALL = [BiasMF, NCFGMF, NCFMLP, NeuMF]

SPARSE_TABLES = {
    BiasMF: ["user_factors", "item_factors", "user_bias", "item_bias"],
    NCFGMF: ["user_embeddings.weight", "item_embeddings.weight"],
    NCFMLP: ["user_embeddings.weight", "item_embeddings.weight"],
    NeuMF: ["gmf_user.weight", "gmf_item.weight",
            "mlp_user.weight", "mlp_item.weight"],
}


@pytest.fixture
def batch():
    return (np.array([0, 1, 2, 1]), np.array([3, 4, 5, 6]),
            np.array([7, 8, 9, 3]))


@pytest.mark.parametrize("cls", ALL)
class TestSparseBaselines:
    def test_sampled_scores_match_dense(self, cls, batch):
        users, pos, neg = batch
        model = cls(20, 30, seed=0)
        dense_pos, dense_neg = model.batch_scores(users, pos, neg)
        sparse_pos, sparse_neg = model.sampled_batch_scores(users, pos, neg)
        np.testing.assert_allclose(sparse_pos.data, dense_pos.data)
        np.testing.assert_allclose(sparse_neg.data, dense_neg.data)

    def test_tables_get_row_sparse_grads(self, cls, batch):
        users, pos, neg = batch
        model = cls(20, 30, seed=0)
        sparse_pos, sparse_neg = model.sampled_batch_scores(users, pos, neg)
        loss = (sparse_pos - sparse_neg).sum()
        loss = loss + model.l2_batch(users, pos, neg, 1e-3)
        loss.backward()
        params = dict(model.named_parameters())
        for name in SPARSE_TABLES[cls]:
            assert isinstance(params[name].grad, RowSparseGrad), name
            touched = set(params[name].grad.indices.tolist())
            universe = set(users.tolist()) | set(pos.tolist()) | set(neg.tolist())
            assert touched <= universe, name

    def test_sparse_grads_match_dense_grads(self, cls, batch):
        users, pos, neg = batch

        def grads(use_sampled):
            model = cls(20, 30, seed=0)
            if use_sampled:
                p, n = model.sampled_batch_scores(users, pos, neg)
            else:
                p, n = model.batch_scores(users, pos, neg)
            ((p - n) * (p - n)).sum().backward()
            return {name: grad_to_dense(param.grad)
                    for name, param in model.named_parameters()}

        dense = grads(False)
        sparse = grads(True)
        for name in dense:
            np.testing.assert_allclose(sparse[name], dense[name],
                                       atol=1e-12, err_msg=name)

    def test_l2_batch_is_batch_local(self, cls, batch):
        users, pos, neg = batch
        model = cls(20, 30, seed=0)
        reg = model.l2_batch(users, pos, neg, 1e-2)
        reg.backward()
        params = dict(model.named_parameters())
        for name in SPARSE_TABLES[cls]:
            grad = params[name].grad
            assert isinstance(grad, RowSparseGrad), name
            # rows outside the batch carry no regularization gradient
            dense = grad_to_dense(grad)
            untouched = np.setdiff1d(
                np.arange(dense.shape[0]),
                np.concatenate([users, pos, neg]))
            assert np.all(dense[untouched] == 0), name

    def test_sampled_training_converges(self, cls):
        from repro.data import leave_one_out_split, taobao_like
        from repro.train import TrainConfig, Trainer

        split = leave_one_out_split(taobao_like(num_users=40, num_items=90,
                                                seed=0))
        model = cls(split.train.num_users, split.train.num_items, seed=0)
        config = TrainConfig(epochs=6, steps_per_epoch=4, batch_users=10,
                             per_user=2, propagation="sampled", seed=0)
        history = Trainer(model, split.train, config).run()
        losses = history.series("loss")
        assert losses[-1] < losses[0]

"""Uniform contract tests across every baseline recommender."""

import numpy as np
import pytest

from repro.data import leave_one_out_split
from repro.models import (
    AutoRec,
    BiasMF,
    CDAE,
    CFUIcA,
    DIPN,
    DMF,
    NADE,
    NCFGMF,
    NCFMLP,
    NGCF,
    NMTR,
    NeuMF,
)
from repro.train import TrainConfig

FAST = TrainConfig(epochs=3, steps_per_epoch=4, batch_users=8, per_user=2,
                   lr=5e-3, seed=0)


def build_all(train):
    u, i = train.num_users, train.num_items
    return [
        BiasMF(u, i, seed=0),
        DMF(train, seed=0),
        NCFGMF(u, i, seed=0),
        NCFMLP(u, i, seed=0),
        NeuMF(u, i, seed=0),
        AutoRec(train, seed=0),
        CDAE(train, seed=0),
        NADE(train, seed=0),
        CFUIcA(train, seed=0),
        NGCF(train, seed=0),
        NMTR(train, seed=0),
        DIPN(train, seed=0),
    ]


@pytest.fixture(scope="module")
def split(small_taobao):
    return leave_one_out_split(small_taobao)


@pytest.fixture(scope="module")
def trained_models(split):
    models = build_all(split.train)
    for model in models:
        model.fit(split.train, FAST)
    return models


class TestContract:
    def test_all_models_have_unique_names(self, split):
        names = [m.name for m in build_all(split.train)]
        assert len(names) == len(set(names))

    def test_score_shape_and_finiteness(self, trained_models):
        users = np.array([0, 1, 2, 3])
        items = np.array([4, 5, 6, 7])
        for model in trained_models:
            scores = model.score(users, items)
            assert scores.shape == (4,), model.name
            assert np.isfinite(scores).all(), model.name

    def test_score_deterministic_in_eval(self, trained_models):
        users = np.array([0, 1])
        items = np.array([2, 3])
        for model in trained_models:
            model.eval()
            a = model.score(users, items)
            b = model.score(users, items)
            np.testing.assert_allclose(a, b, err_msg=model.name)

    def test_score_tensor_matches_score(self, trained_models):
        users = np.array([1, 2])
        items = np.array([3, 4])
        for model in trained_models:
            model.eval()
            np.testing.assert_allclose(
                model.score(users, items),
                model.score_tensor(users, items).data,
                rtol=1e-8, err_msg=model.name)

    def test_training_produces_gradients(self, split):
        for model in build_all(split.train):
            history = model.fit(split.train, FAST)
            assert len(history) == FAST.epochs, model.name
            assert np.isfinite(history.last()["loss"]), model.name

    def test_recommend_api(self, trained_models):
        for model in trained_models:
            recs = model.recommend(0, top_n=3)
            assert len(recs) == 3, model.name
            scores = [s for _, s in recs]
            assert scores == sorted(scores, reverse=True), model.name

    def test_parameters_nonempty(self, split):
        for model in build_all(split.train):
            assert model.num_parameters() > 0, model.name


class TestModelSpecifics:
    def test_biasmf_bias_contributes(self, split):
        model = BiasMF(split.train.num_users, split.train.num_items, seed=0)
        model.item_bias.data[3] = 100.0
        scores = model.score(np.array([0, 0]), np.array([3, 4]))
        assert scores[0] > scores[1]

    def test_dmf_scores_are_cosines(self, split):
        model = DMF(split.train, seed=0)
        scores = model.score(np.arange(5), np.arange(5))
        assert (np.abs(scores) <= 1.0 + 1e-9).all()

    def test_autorec_score_uses_reconstruction(self, split):
        model = AutoRec(split.train, seed=0)
        users = np.array([0, 1])
        items = np.array([2, 3])
        recon = model._reconstruction()
        np.testing.assert_allclose(model.score(users, items),
                                   recon[users, items])

    def test_cdae_corruption_validated(self, split):
        with pytest.raises(ValueError):
            CDAE(split.train, corruption=1.0)

    def test_nade_excludes_scored_item_from_history(self, split):
        """Autoregressive conditioning must not leak the predicted item."""
        model = NADE(split.train, seed=0)
        user = int(split.train.arrays("purchase")[0][0])
        history = model._histories[user]
        assert history.size > 0
        held = history[0]
        hidden_with_exclusion = model._hidden(np.array([user]),
                                              np.array([held]))
        hidden_without = model._hidden(np.array([user]),
                                       np.array([split.train.num_items + 0 - 1]))
        assert not np.allclose(hidden_with_exclusion.data, hidden_without.data)

    def test_ngcf_graph_modes(self, split):
        merged = NGCF(split.train, graph_mode="merged", seed=0)
        target = NGCF(split.train, graph_mode="target", seed=0)
        assert merged._laplacian.nnz >= target._laplacian.nnz
        with pytest.raises(ValueError):
            NGCF(split.train, graph_mode="bogus")

    def test_nmtr_cascade_depth(self, split):
        model = NMTR(split.train, seed=0)
        users = np.array([0, 1])
        items = np.array([2, 3])
        # target is the last behavior → cascade over all K heads
        full = model._cascaded_logits(users, items, model._target_index)
        first = model._cascaded_logits(users, items, 0)
        assert not np.allclose(full.data, first.data)

    def test_nmtr_task_weights_validated(self, split):
        with pytest.raises(ValueError):
            NMTR(split.train, task_weights=[1.0])

    def test_dipn_sequences_respect_max_len(self, split):
        model = DIPN(split.train, max_seq_len=5, seed=0)
        items, behaviors, mask = model._sequences
        assert items.shape == (split.train.num_users, 5)
        assert mask.max() <= 1.0
        # sequences are chronologically most recent: mask is a prefix of ones
        for row in mask:
            ones = int(row.sum())
            np.testing.assert_array_equal(row[:ones], 1.0)

    def test_dipn_intent_cache_invalidation(self, split):
        model = DIPN(split.train, seed=0)
        users, items = np.array([0]), np.array([1])
        before = model.score(users, items)
        model.user_embeddings.weight.data += 1.0
        model.on_step_end()
        after = model.score(users, items)
        assert not np.allclose(before, after)

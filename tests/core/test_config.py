"""Tests of GNMRConfig validation and variants."""

import pytest

from repro.core import GNMRConfig


class TestValidation:
    def test_defaults_are_paper_settings(self):
        cfg = GNMRConfig()
        assert cfg.embedding_dim == 16
        assert cfg.memory_dims == 8
        assert cfg.num_layers == 2

    def test_heads_must_divide_dim(self):
        with pytest.raises(ValueError):
            GNMRConfig(embedding_dim=16, num_heads=3)

    def test_negative_layers_rejected(self):
        with pytest.raises(ValueError):
            GNMRConfig(num_layers=-1)

    def test_zero_layers_allowed(self):
        assert GNMRConfig(num_layers=0).num_layers == 0

    def test_bad_aggregator(self):
        with pytest.raises(ValueError):
            GNMRConfig(aggregator="max")

    def test_bad_dropout(self):
        with pytest.raises(ValueError):
            GNMRConfig(dropout=1.0)

    def test_bad_layer_combination(self):
        with pytest.raises(ValueError):
            GNMRConfig(layer_combination="concat")

    def test_bad_memory_dims(self):
        with pytest.raises(ValueError):
            GNMRConfig(memory_dims=0)


class TestVariant:
    def test_variant_overrides(self):
        base = GNMRConfig()
        ablated = base.variant(use_message_attention=False, num_layers=3)
        assert not ablated.use_message_attention
        assert ablated.num_layers == 3
        # base unchanged
        assert base.use_message_attention and base.num_layers == 2

    def test_variant_validates(self):
        with pytest.raises(ValueError):
            GNMRConfig().variant(num_heads=5)

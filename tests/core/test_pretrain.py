"""Tests of the autoencoder pre-training scheme."""

import numpy as np

from repro.core import AutoencoderPretrainer, pretrain_embeddings


class TestAutoencoder:
    def test_loss_decreases(self, rng):
        profiles = (rng.random((30, 20)) > 0.7).astype(float)
        ae = AutoencoderPretrainer(20, 6, rng)
        losses = ae.fit(profiles, epochs=25, lr=1e-2, batch_size=8, rng=rng)
        assert losses[-1] < losses[0]

    def test_embedding_shape_and_scale(self, rng):
        profiles = (rng.random((30, 20)) > 0.7).astype(float)
        ae = AutoencoderPretrainer(20, 6, rng)
        ae.fit(profiles, epochs=5, lr=1e-2, batch_size=8, rng=rng)
        codes = ae.embeddings(profiles)
        assert codes.shape == (30, 6)
        # centered and small-scale, suitable as an init
        np.testing.assert_allclose(codes.mean(axis=0), 0.0, atol=1e-10)
        assert np.abs(codes).max() < 1.0


class TestPretrainEmbeddings:
    def test_shapes(self, small_taobao):
        users, items = pretrain_embeddings(small_taobao, embedding_dim=8,
                                           epochs=3, seed=0)
        assert users.shape == (small_taobao.num_users, 8)
        assert items.shape == (small_taobao.num_items, 8)

    def test_deterministic(self, small_taobao):
        a_u, a_i = pretrain_embeddings(small_taobao, 4, epochs=2, seed=3)
        b_u, b_i = pretrain_embeddings(small_taobao, 4, epochs=2, seed=3)
        np.testing.assert_array_equal(a_u, b_u)
        np.testing.assert_array_equal(a_i, b_i)

    def test_similar_users_get_similar_codes(self, small_taobao):
        """Users sharing many interactions should embed closer than random
        pairs, on average — the whole point of the pre-training."""
        users, _ = pretrain_embeddings(small_taobao, 8, epochs=20, seed=0)
        graph = small_taobao.graph()
        profiles = graph.merged_adjacency().to_dense()
        # cosine similarity of profiles vs embedding distance correlation
        norm = np.linalg.norm(profiles, axis=1, keepdims=True) + 1e-9
        profile_sim = (profiles / norm) @ (profiles / norm).T
        unorm = np.linalg.norm(users, axis=1, keepdims=True) + 1e-9
        code_sim = (users / unorm) @ (users / unorm).T
        iu = np.triu_indices(len(users), k=1)
        corr = np.corrcoef(profile_sim[iu], code_sim[iu])[0, 1]
        assert corr > 0.1

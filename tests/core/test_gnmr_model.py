"""Tests of the assembled GNMR model."""

import numpy as np
import pytest

from repro.core import GNMR, GNMRConfig


@pytest.fixture(scope="module")
def dataset():
    from repro.data import taobao_like

    return taobao_like(num_users=30, num_items=45, seed=17)


@pytest.fixture(scope="module")
def model(dataset):
    return GNMR(dataset, GNMRConfig(embedding_dim=8, memory_dims=4,
                                    num_heads=2, num_layers=2,
                                    pretrain=False, seed=0))


class TestConstruction:
    def test_layer_count(self, model):
        assert len(model.layers) == 2

    def test_zero_layer_model(self, dataset):
        shallow = GNMR(dataset, GNMRConfig(num_layers=0, pretrain=False))
        assert len(shallow.layers) == 0
        scores = shallow.score(np.array([0, 1]), np.array([2, 3]))
        assert scores.shape == (2,)

    def test_graph_behaviors_subset(self, dataset):
        sub = GNMR(dataset, GNMRConfig(pretrain=False,
                                       graph_behaviors=("cart", "purchase")))
        assert sub.behavior_names == ("cart", "purchase")
        assert len(sub._user_adjacencies) == 2

    def test_unknown_graph_behavior_rejected(self, dataset):
        with pytest.raises(ValueError):
            GNMR(dataset, GNMRConfig(pretrain=False, graph_behaviors=("bogus",)))

    def test_pretrained_init_differs_from_random(self, dataset):
        pre = GNMR(dataset, GNMRConfig(embedding_dim=8, pretrain=True,
                                       pretrain_epochs=2, seed=0))
        rand = GNMR(dataset, GNMRConfig(embedding_dim=8, pretrain=False, seed=0))
        assert not np.allclose(pre.user_embeddings.data, rand.user_embeddings.data)


class TestPropagation:
    def test_multi_order_shapes(self, model, dataset):
        user_layers, item_layers = model.propagate()
        assert len(user_layers) == 3  # orders 0..2
        for h in user_layers:
            assert h.shape == (dataset.num_users, 8)
        for h in item_layers:
            assert h.shape == (dataset.num_items, 8)

    def test_score_tensor_matches_score(self, model):
        model.eval()  # dropout must be off for the paths to agree
        users = np.array([0, 1, 2])
        items = np.array([3, 4, 5])
        a = model.score(users, items)
        b = model.score_tensor(users, items).data
        np.testing.assert_allclose(a, b, rtol=1e-10)

    def test_batch_scores_consistent(self, model):
        model.eval()
        users = np.array([0, 1])
        pos = np.array([2, 3])
        neg = np.array([4, 5])
        p, n = model.batch_scores(users, pos, neg)
        np.testing.assert_allclose(p.data, model.score(users, pos), rtol=1e-10)
        np.testing.assert_allclose(n.data, model.score(users, neg), rtol=1e-10)

    def test_training_mode_dropout_is_stochastic(self, dataset):
        """With dropout on and training mode, propagation is stochastic —
        but score() must stay deterministic (it forces eval mode)."""
        stochastic = GNMR(dataset, GNMRConfig(embedding_dim=8, pretrain=False,
                                              dropout=0.5, seed=3))
        stochastic.train()
        users, items = np.array([0, 1]), np.array([2, 3])
        a = stochastic.score_tensor(users, items).data
        b = stochastic.score_tensor(users, items).data
        assert not np.allclose(a, b)
        np.testing.assert_allclose(stochastic.score(users, items),
                                   stochastic.score(users, items))

    def test_cache_invalidation(self, model):
        users, items = np.array([0]), np.array([1])
        before = model.score(users, items)
        model.user_embeddings.data = model.user_embeddings.data + 0.5
        stale = model.score(users, items)  # cache still warm
        np.testing.assert_allclose(stale, before)
        model.on_step_end()
        fresh = model.score(users, items)
        assert not np.allclose(fresh, before)
        model.user_embeddings.data = model.user_embeddings.data - 0.5
        model.on_step_end()

    def test_gradients_reach_all_parameters(self, model):
        users = np.array([0, 1, 2, 3])
        pos = np.array([1, 2, 3, 4])
        neg = np.array([5, 6, 7, 8])
        model.zero_grad()
        p, n = model.batch_scores(users, pos, neg)
        from repro.nn import pairwise_hinge_loss

        pairwise_hinge_loss(p, n).backward()
        missing = [name for name, p_ in model.named_parameters() if p_.grad is None]
        assert not missing, f"no gradient for {missing}"


class TestAblations:
    def test_gnmr_be_has_fewer_params(self, dataset):
        full = GNMR(dataset, GNMRConfig(pretrain=False))
        be = GNMR(dataset, GNMRConfig(pretrain=False, use_behavior_embedding=False))
        assert be.num_parameters() < full.num_parameters()

    def test_gnmr_ma_has_fewer_params(self, dataset):
        full = GNMR(dataset, GNMRConfig(pretrain=False))
        ma = GNMR(dataset, GNMRConfig(pretrain=False, use_message_attention=False))
        assert ma.num_parameters() < full.num_parameters()

    def test_depth_zero_scores_are_dot_products(self, dataset):
        shallow = GNMR(dataset, GNMRConfig(num_layers=0, pretrain=False, seed=1))
        users, items = np.array([0, 1]), np.array([1, 2])
        expected = np.sum(shallow.user_embeddings.data[users]
                          * shallow.item_embeddings.data[items], axis=1)
        np.testing.assert_allclose(shallow.score(users, items), expected)

    def test_mean_layer_combination(self, dataset):
        summed = GNMR(dataset, GNMRConfig(pretrain=False, seed=2))
        averaged = GNMR(dataset, GNMRConfig(pretrain=False, seed=2,
                                            layer_combination="mean"))
        users, items = np.array([0]), np.array([1])
        ratio = summed.score(users, items) / averaged.score(users, items)
        np.testing.assert_allclose(ratio, 3.0, rtol=1e-8)


class TestIntrospection:
    def test_behavior_attention_matrix(self, model, dataset):
        attn = model.behavior_attention()
        k = dataset.num_behaviors
        assert attn.shape == (k, k)
        np.testing.assert_allclose(attn.sum(axis=-1), 1.0, rtol=1e-8)

    def test_behavior_importance(self, model, dataset):
        weights = model.behavior_importance()
        assert weights.shape == (dataset.num_behaviors,)
        assert weights.sum() == pytest.approx(1.0)

    def test_attention_unavailable_on_ablated(self, dataset):
        ma = GNMR(dataset, GNMRConfig(pretrain=False, use_message_attention=False))
        with pytest.raises(RuntimeError):
            ma.behavior_attention()

    def test_recommend_excludes_items(self, model):
        recs = model.recommend(0, top_n=5, exclude_items={0, 1, 2})
        items = [i for i, _ in recs]
        assert len(recs) == 5
        assert not ({0, 1, 2} & set(items))
        scores = [s for _, s in recs]
        assert scores == sorted(scores, reverse=True)

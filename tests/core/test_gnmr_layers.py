"""Tests of the three GNMR building-block layers (η, ξ, ψ)."""

import numpy as np
import pytest

from repro.core import (
    BehaviorEmbeddingLayer,
    CrossBehaviorAttention,
    GatedMessageAggregation,
    GNMRPropagationLayer,
)
from repro.tensor import Tensor, check_gradients
from repro.tensor.sparse import SparseAdjacency


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestBehaviorEmbedding:
    def test_shape_preserved(self, rng):
        layer = BehaviorEmbeddingLayer(dim=8, memory_dims=4, rng=rng)
        out = layer(Tensor(rng.standard_normal((10, 8))))
        assert out.shape == (10, 8)

    def test_gradients(self, rng):
        layer = BehaviorEmbeddingLayer(dim=4, memory_dims=3, rng=rng)
        x = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
        check_gradients(lambda x: layer(x), [x], atol=1e-4)
        layer(x).sum().backward()
        for p in layer.parameters():
            assert p.grad is not None

    def test_memory_gates_are_input_dependent(self, rng):
        """Different messages should produce different gate activations."""
        layer = BehaviorEmbeddingLayer(dim=6, memory_dims=4, rng=rng)
        a = rng.standard_normal((1, 6))
        gates_a = np.maximum(a @ layer.w1.data.T + layer.b1.data, 0.0)
        gates_b = np.maximum(-a @ layer.w1.data.T + layer.b1.data, 0.0)
        assert not np.allclose(gates_a, gates_b)

    def test_zero_message_gives_zero_output(self, rng):
        """With zero input, gates ReLU(b1)=b1⁺ multiply zero projections."""
        layer = BehaviorEmbeddingLayer(dim=6, memory_dims=4, rng=rng)
        out = layer(Tensor(np.zeros((3, 6))))
        np.testing.assert_allclose(out.data, 0.0)


class TestCrossBehaviorAttention:
    def test_shapes(self, rng):
        layer = CrossBehaviorAttention(dim=8, num_heads=2, rng=rng)
        out, weights = layer(Tensor(rng.standard_normal((5, 3, 8))))
        assert out.shape == (5, 3, 8)
        assert weights.shape == (5, 2, 3, 3)

    def test_attention_rows_normalized(self, rng):
        layer = CrossBehaviorAttention(dim=8, num_heads=2, rng=rng)
        _, weights = layer(Tensor(rng.standard_normal((4, 3, 8))))
        np.testing.assert_allclose(weights.data.sum(axis=-1), 1.0)

    def test_residual_connection(self, rng):
        """Output = attention mix + input, so zero V weights ⇒ identity."""
        layer = CrossBehaviorAttention(dim=4, num_heads=1, rng=rng)
        layer.v.data = np.zeros_like(layer.v.data)
        x = Tensor(rng.standard_normal((3, 2, 4)))
        out, _ = layer(x)
        np.testing.assert_allclose(out.data, x.data)

    def test_heads_must_divide(self, rng):
        with pytest.raises(ValueError):
            CrossBehaviorAttention(dim=7, num_heads=2, rng=rng)

    def test_gradients(self, rng):
        layer = CrossBehaviorAttention(dim=4, num_heads=2, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        check_gradients(lambda x: layer(x)[0], [x], atol=1e-4)


class TestGatedAggregation:
    def test_fused_shape(self, rng):
        layer = GatedMessageAggregation(dim=8, hidden_dim=8, rng=rng)
        fused, weights = layer(Tensor(rng.standard_normal((6, 4, 8))))
        assert fused.shape == (6, 8)
        assert weights.shape == (6, 4)

    def test_weights_are_distribution(self, rng):
        layer = GatedMessageAggregation(dim=8, hidden_dim=8, rng=rng)
        _, weights = layer(Tensor(rng.standard_normal((6, 4, 8))))
        np.testing.assert_allclose(weights.data.sum(axis=-1), 1.0)
        assert (weights.data >= 0).all()

    def test_fused_is_convex_combination(self, rng):
        """Fused output lies inside the per-type message span."""
        layer = GatedMessageAggregation(dim=4, hidden_dim=4, rng=rng)
        messages = rng.standard_normal((5, 3, 4))
        fused, weights = layer(Tensor(messages))
        manual = (messages * weights.data[:, :, None]).sum(axis=1)
        np.testing.assert_allclose(fused.data, manual)

    def test_gradients(self, rng):
        layer = GatedMessageAggregation(dim=4, hidden_dim=4, rng=rng)
        x = Tensor(rng.standard_normal((3, 2, 4)), requires_grad=True)
        check_gradients(lambda x: layer(x)[0], [x], atol=1e-4)


class TestPropagationLayer:
    @pytest.fixture
    def adjacencies(self, rng):
        import scipy.sparse as sp

        return [SparseAdjacency(sp.random(6, 9, density=0.4, random_state=s))
                for s in (1, 2)]

    def test_propagate_side_shape(self, rng, adjacencies):
        layer = GNMRPropagationLayer(dim=8, memory_dims=4, num_heads=2, rng=rng)
        out = layer.propagate_side(adjacencies, Tensor(rng.standard_normal((9, 8))))
        assert out.shape == (6, 8)

    def test_ablations_remove_submodules(self, rng):
        be = GNMRPropagationLayer(4, 2, 2, rng, use_behavior_embedding=False)
        assert be.behavior_embedding is None
        ma = GNMRPropagationLayer(4, 2, 2, rng, use_message_attention=False)
        assert ma.attention is None
        ga = GNMRPropagationLayer(4, 2, 2, rng, use_gated_aggregation=False)
        assert ga.aggregation is None

    def test_ablated_layer_still_runs(self, rng, adjacencies):
        layer = GNMRPropagationLayer(8, 4, 2, rng,
                                     use_behavior_embedding=False,
                                     use_message_attention=False,
                                     use_gated_aggregation=False)
        out = layer.propagate_side(adjacencies, Tensor(rng.standard_normal((9, 8))))
        assert out.shape == (6, 8)

    def test_end_to_end_gradient(self, rng, adjacencies):
        layer = GNMRPropagationLayer(4, 2, 2, rng)
        source = Tensor(rng.standard_normal((9, 4)), requires_grad=True)
        check_gradients(lambda s: layer.propagate_side(adjacencies, s),
                        [source], atol=1e-4)

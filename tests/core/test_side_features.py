"""Tests of the attribute-feature extension (paper future work)."""

import numpy as np
import pytest

from repro.core import GNMR, GNMRConfig
from repro.data import synthesize_attributes, taobao_like


@pytest.fixture(scope="module")
def featured():
    data = taobao_like(num_users=30, num_items=45, seed=31)
    return synthesize_attributes(data, num_features=6, seed=1)


class TestSynthesizeAttributes:
    def test_shapes(self, featured):
        assert featured.user_features.shape == (30, 6)
        assert featured.item_features.shape == (45, 6)

    def test_interactions_preserved(self, featured):
        plain = taobao_like(num_users=30, num_items=45, seed=31)
        assert featured.interaction_count() == plain.interaction_count()
        assert featured.behavior_names == plain.behavior_names

    def test_features_correlate_with_interactions(self):
        """Low-noise attributes should carry interaction structure."""
        data = taobao_like(num_users=40, num_items=60, seed=32)
        featured = synthesize_attributes(data, num_features=8, noise=0.1, seed=2)
        merged = data.graph().merged_adjacency().to_dense()
        # users with similar interaction rows → similar feature rows
        reconstructed = featured.user_features @ featured.item_features.T
        corr = np.corrcoef(reconstructed.ravel(), merged.ravel())[0, 1]
        assert corr > 0.5

    def test_padding_with_more_features_than_rank(self):
        data = taobao_like(num_users=20, num_items=30, seed=33)
        featured = synthesize_attributes(data, num_features=25, seed=3)
        assert featured.user_features.shape[1] == 25

    def test_invalid_feature_count(self, featured):
        with pytest.raises(ValueError):
            synthesize_attributes(featured, num_features=0)

    def test_feature_shape_validation(self):
        from repro.data import InteractionDataset

        with pytest.raises(ValueError):
            InteractionDataset(
                "x", 3, 3, ("a",), "a",
                {"a": {"users": np.array([0]), "items": np.array([0])}},
                user_features=np.zeros((5, 2)),
            )

    def test_features_survive_derived_datasets(self, featured):
        only = featured.only_target()
        assert only.user_features is not None
        reduced = featured.remove_target_pairs(np.array([0]),
                                               featured.user_target_items(0)[:1])
        assert reduced.item_features is not None


class TestGNMRWithFeatures:
    def test_requires_features(self):
        plain = taobao_like(num_users=20, num_items=30, seed=34)
        with pytest.raises(ValueError):
            GNMR(plain, GNMRConfig(pretrain=False, use_side_features=True))

    def test_forward_works(self, featured):
        model = GNMR(featured, GNMRConfig(pretrain=False, use_side_features=True,
                                          seed=0))
        scores = model.score(np.array([0, 1]), np.array([2, 3]))
        assert np.isfinite(scores).all()

    def test_feature_projection_receives_gradient(self, featured):
        from repro.nn import pairwise_hinge_loss

        model = GNMR(featured, GNMRConfig(pretrain=False, use_side_features=True,
                                          seed=0))
        pos, neg = model.batch_scores(np.array([0, 1]), np.array([1, 2]),
                                      np.array([3, 4]))
        pairwise_hinge_loss(pos, neg).backward()
        assert model.user_feature_proj.weight.grad is not None
        assert model.item_feature_proj.weight.grad is not None

    def test_features_change_scores(self, featured):
        with_f = GNMR(featured, GNMRConfig(pretrain=False, use_side_features=True,
                                           seed=0))
        without = GNMR(featured, GNMRConfig(pretrain=False, seed=0))
        users, items = np.array([0, 1]), np.array([2, 3])
        assert not np.allclose(with_f.score(users, items),
                               without.score(users, items))

    def test_trains_end_to_end(self, featured):
        from repro.train import TrainConfig

        model = GNMR(featured, GNMRConfig(pretrain=False, use_side_features=True,
                                          seed=0))
        history = model.fit(featured, TrainConfig(epochs=2, steps_per_epoch=3,
                                                  batch_users=8, per_user=2, seed=0))
        assert len(history) == 2

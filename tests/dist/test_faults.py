"""Fault injection on the gradient transport: every mangled frame is loud.

The parameter-server's correctness story under faults is *detection*, not
tolerance: the strict push-sequence check in ``ShardOwner`` and the
bounds-checked codec must turn a dropped, duplicated, or truncated frame
into an immediate ``TransportError`` / ``FrameError`` — never a silently
wrong table. These tests drive real frames through a
:class:`helpers.faults.FaultyChannel` over a real ``PipeChannel`` pair and
pin the failure surface of each fault mode.
"""

import multiprocessing

import numpy as np
import pytest
from helpers.faults import FaultyChannel

from repro.dist import ShardOwner, TransportError
from repro.dist.codec import FrameError, decode, encode_push, frame
from repro.dist.transport import PipeChannel
from repro.nn.module import Parameter
from repro.tensor.rowsparse import RowSparseGrad


def push_body(step: int, rows: int = 4, dim: int = 3, seed: int = 0) -> bytes:
    rng = np.random.default_rng(seed + step)
    grad = RowSparseGrad(np.arange(2), rng.standard_normal((2, dim)), rows)
    return encode_push(step, 0.05, [grad])


@pytest.fixture
def pipe_pair():
    send, recv = PipeChannel.pair(multiprocessing)
    yield send, recv
    send.close()
    recv.close()


class TestFaultyChannel:
    def test_dropped_frame_breaks_the_sequence(self, pipe_pair):
        send, recv = pipe_pair
        faulty = FaultyChannel(send, drop=[1])
        for step in range(3):
            faulty.send(frame(push_body(step)))
        assert faulty.faults["dropped"] == 1
        owner = ShardOwner([Parameter(np.zeros((4, 3)))], lr=0.05)
        owner.apply_frame(recv.recv(timeout=5.0))
        # step 1 never arrived; step 2 must not apply as if nothing happened
        with pytest.raises(TransportError, match="out-of-sequence"):
            owner.apply_frame(recv.recv(timeout=5.0))

    def test_duplicated_frame_is_rejected(self, pipe_pair):
        send, recv = pipe_pair
        faulty = FaultyChannel(send, duplicate=[0])
        faulty.send(frame(push_body(0)))
        assert faulty.faults["duplicated"] == 1
        owner = ShardOwner([Parameter(np.zeros((4, 3)))], lr=0.05)
        owner.apply_frame(recv.recv(timeout=5.0))
        with pytest.raises(TransportError, match="out-of-sequence"):
            owner.apply_frame(recv.recv(timeout=5.0))

    def test_truncated_frame_fails_decode_not_silence(self, pipe_pair):
        send, recv = pipe_pair
        faulty = FaultyChannel(send, truncate=[0])
        faulty.send(frame(push_body(0)))
        assert faulty.faults["truncated"] == 1
        body = recv.recv(timeout=5.0)
        with pytest.raises(FrameError):
            decode(body)
        owner = ShardOwner([Parameter(np.zeros((4, 3)))], lr=0.05)
        with pytest.raises(FrameError):
            owner.apply_frame(body)

    def test_clean_frames_pass_through_bit_exact(self, pipe_pair):
        send, recv = pipe_pair
        faulty = FaultyChannel(send)
        body = push_body(7)
        faulty.send(frame(body))
        kind, step, lr, grads = decode(recv.recv(timeout=5.0))
        ref_kind, ref_step, ref_lr, ref_grads = decode(body)
        assert (kind, step, lr) == (ref_kind, ref_step, ref_lr)
        np.testing.assert_array_equal(grads[0].values, ref_grads[0].values)
        assert faulty.faults == {"dropped": 0, "truncated": 0,
                                 "duplicated": 0}

    def test_fault_indices_count_all_sends(self, pipe_pair):
        send, recv = pipe_pair
        faulty = FaultyChannel(send, drop=[0, 2])
        for step in range(4):
            faulty.send(frame(push_body(step)))
        received = []
        while True:
            body = recv.recv(timeout=0.2)
            if body is None:
                break
            received.append(decode(body)[1])
        assert received == [1, 3]
        assert faulty.sent == 4

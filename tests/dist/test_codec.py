"""Seeded property tests for the parameter-server wire codec.

ISSUE-8 satellite 3: round-trip ``RowSparseGrad`` / dense-block frames
through the codec — empty gradients, 1-D bias tables, f32/f64, frames at
the size limit, and every truncated-frame error path must raise
:class:`repro.dist.FrameError` rather than decode to a wrong gradient.
"""

import struct

import numpy as np
import pytest

from repro.dist import (
    FrameError,
    decode,
    decode_grad,
    encode_grad,
    encode_push,
    encode_stop,
    frame,
    unframe,
)
from repro.dist.codec import KIND_PUSH, KIND_STOP, MAX_FRAME_BYTES
from repro.tensor.rowsparse import RowSparseGrad


def random_rowsparse(rng, *, num_rows, nnz, row_shape=(), dtype=np.float64):
    """A coalesced row-sparse gradient with seeded contents."""
    indices = rng.choice(num_rows, size=nnz, replace=False) if nnz else \
        np.empty(0, dtype=np.int64)
    values = rng.standard_normal((nnz,) + row_shape).astype(dtype)
    return RowSparseGrad(indices, values, num_rows)


def assert_grads_equal(a, b):
    if a is None:
        assert b is None
        return
    if isinstance(a, RowSparseGrad):
        assert isinstance(b, RowSparseGrad)
        assert a.num_rows == b.num_rows
        np.testing.assert_array_equal(a.indices, b.indices)
        assert a.values.dtype == b.values.dtype
        np.testing.assert_array_equal(a.values, b.values)
        return
    assert isinstance(b, np.ndarray)
    assert np.asarray(a).dtype == b.dtype
    np.testing.assert_array_equal(np.asarray(a), b)


class TestGradRoundTrip:
    """encode_grad → decode_grad is the identity, bit for bit."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("row_shape", [(), (1,), (8,)],
                             ids=["bias-1d", "dim1", "dim8"])
    def test_rowsparse_seeded_sweep(self, dtype, row_shape):
        rng = np.random.default_rng(hash((np.dtype(dtype).str, row_shape))
                                    % (2**32))
        for nnz in (0, 1, 7, 64):
            grad = random_rowsparse(rng, num_rows=128, nnz=nnz,
                                    row_shape=row_shape, dtype=dtype)
            assert_grads_equal(grad, decode_grad(encode_grad(grad)))

    def test_empty_rowsparse(self):
        grad = RowSparseGrad(np.empty(0, dtype=np.int64),
                             np.empty((0, 4)), num_rows=10)
        out = decode_grad(encode_grad(grad))
        assert out.indices.size == 0
        assert out.values.shape == (0, 4)
        assert out.num_rows == 10

    def test_none_grad(self):
        assert decode_grad(encode_grad(None)) is None

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("shape", [(5,), (3, 4), (2, 3, 2), (0, 6)],
                             ids=["bias-1d", "matrix", "3d", "empty"])
    def test_dense_seeded(self, dtype, shape):
        rng = np.random.default_rng(7)
        grad = rng.standard_normal(shape).astype(dtype)
        assert_grads_equal(grad, decode_grad(encode_grad(grad)))

    def test_decoded_arrays_are_writable(self):
        """Owners scatter into decoded values; read-only views would trap."""
        rng = np.random.default_rng(0)
        sparse = decode_grad(encode_grad(
            random_rowsparse(rng, num_rows=16, nnz=3, row_shape=(2,))))
        sparse.values += 1.0  # must not raise
        dense = decode_grad(encode_grad(rng.standard_normal(4)))
        dense += 1.0


class TestPushRoundTrip:
    def test_mixed_frame_seeded(self):
        rng = np.random.default_rng(42)
        for trial in range(10):
            grads = [
                None,
                random_rowsparse(rng, num_rows=64, nnz=int(rng.integers(0, 9)),
                                 row_shape=(6,)),
                random_rowsparse(rng, num_rows=32,
                                 nnz=int(rng.integers(0, 5)),
                                 dtype=np.float32),  # 1-D bias table
                rng.standard_normal((4, 3)),
            ]
            step = int(rng.integers(0, 1 << 40))
            lr = float(rng.uniform(1e-6, 1.0))
            kind, out_step, out_lr, out = decode(encode_push(step, lr, grads))
            assert kind == KIND_PUSH
            assert out_step == step
            assert out_lr == lr  # f64 carried exactly
            assert len(out) == len(grads)
            for a, b in zip(grads, out):
                assert_grads_equal(a, b)

    def test_stop_frame(self):
        kind, step, lr, grads = decode(encode_stop())
        assert kind == KIND_STOP
        assert grads == []


class TestFraming:
    def test_frame_unframe_identity(self):
        body = encode_push(3, 0.01, [None])
        assert unframe(frame(body)) == body

    def test_unframe_rejects_short_buffer(self):
        with pytest.raises(FrameError, match="no length prefix"):
            unframe(b"\x01\x02")

    def test_unframe_rejects_length_mismatch(self):
        framed = frame(b"abcdef")
        with pytest.raises(FrameError, match="length prefix"):
            unframe(framed + b"x")  # trailing garbage
        with pytest.raises(FrameError, match="length prefix"):
            unframe(framed[:-1])  # short read

    def test_unframe_rejects_oversized_declared_length(self):
        """A corrupt u32 prefix must not trigger an unbounded read."""
        bogus = struct.pack("<I", MAX_FRAME_BYTES + 1) + b""
        with pytest.raises(FrameError, match="MAX_FRAME_BYTES"):
            unframe(bogus)

    def test_frame_at_declared_size_is_exactly_prefixed(self):
        body = b"z" * 1000
        framed = frame(body)
        assert len(framed) == 4 + 1000
        assert struct.unpack("<I", framed[:4])[0] == 1000


class TestTruncationAndCorruption:
    """Every strict prefix of a valid frame raises, never mis-decodes."""

    def test_every_truncation_point_raises(self):
        rng = np.random.default_rng(3)
        body = encode_push(5, 0.1, [
            random_rowsparse(rng, num_rows=20, nnz=4, row_shape=(3,)),
            None,
            rng.standard_normal((2, 2)).astype(np.float32),
        ])
        for cut in range(len(body)):
            with pytest.raises(FrameError):
                decode(body[:cut])

    def test_trailing_bytes_raise(self):
        body = encode_push(1, 0.5, [None])
        with pytest.raises(FrameError, match="trailing"):
            decode(body + b"\x00")

    def test_bad_magic(self):
        body = bytearray(encode_stop())
        body[0] ^= 0xFF
        with pytest.raises(FrameError, match="magic"):
            decode(bytes(body))

    def test_bad_version(self):
        body = bytearray(encode_stop())
        body[2] = 99
        with pytest.raises(FrameError, match="version"):
            decode(bytes(body))

    def test_bad_kind(self):
        body = bytearray(encode_stop())
        body[3] = 42
        with pytest.raises(FrameError, match="kind"):
            decode(bytes(body))

    def test_unknown_grad_tag(self):
        with pytest.raises(FrameError, match="tag"):
            decode_grad(b"\x07")

    def test_bad_dtype_token(self):
        # tag ROWSPARSE, dtype token "zz" — not a numpy dtype
        payload = b"\x01" + b"\x02zz"
        with pytest.raises(FrameError):
            decode_grad(payload)

    def test_out_of_range_indices_rejected(self):
        """A tampered num_rows must surface as FrameError, not IndexError."""
        # hand-packed ROWSPARSE entry: values (2,) f8, num_rows=1 but
        # indices [0, 5] — inconsistent on purpose
        payload = (b"\x01"                       # tag
                   + b"\x03<f8"                  # dtype token
                   + struct.pack("<BQ", 1, 2)    # ndim=1, dims=(2,)
                   + struct.pack("<QB", 1, 1)    # num_rows=1, coalesced
                   + np.array([0, 5], dtype=np.int64).tobytes()
                   + np.array([1.0, 2.0]).tobytes())
        with pytest.raises(FrameError, match="row-sparse"):
            decode_grad(payload)

    def test_grad_count_overrun_raises(self):
        """Header promising more gradients than the body carries."""
        body = bytearray(encode_push(0, 0.1, [None]))
        struct.pack_into("<H", body, struct.calcsize("<HBBqd"), 3)
        with pytest.raises(FrameError, match="truncated"):
            decode(bytes(body))

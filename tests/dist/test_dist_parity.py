"""Cross-process bit-parity: the ISSUE-8 acceptance oracle.

``dist="sync"`` over a real transport must reproduce in-process
``shards=K`` training *exactly* — identical loss trace and identical
final parameters — because synchronous mode barriers on every push and
optimizer state is strictly per-parameter (see ``docs/distributed.md``).
The in-process baseline is itself pinned to the unsharded float64 goldens
by ``tests/shard/test_parity.py``, so transitively these runs reproduce
the seed goldens too.
"""

import numpy as np
import pytest

from repro.core import GNMR, GNMRConfig
from repro.data import leave_one_out_split, taobao_like
from repro.shard import table_array
from repro.train import TrainConfig, Trainer
from repro.utils import load_checkpoint, save_checkpoint


@pytest.fixture(scope="module")
def tiny_split():
    return leave_one_out_split(taobao_like(num_users=50, num_items=120,
                                           seed=0))


def _train_gnmr(split, *, shards=2, dist="off", transport="shm",
                workers=None, staleness=2, optimizer="adam",
                propagation="sampled"):
    config = GNMRConfig(pretrain=False, seed=0, num_layers=2, dropout=0.0,
                        shards=shards, shard_strategy="range")
    model = GNMR(split.train, config)
    tc = TrainConfig(epochs=2, steps_per_epoch=4, batch_users=8, per_user=2,
                     propagation=propagation, fanout=5, seed=0,
                     optimizer=optimizer, shards=shards, dist=dist,
                     dist_workers=workers, dist_staleness=staleness,
                     dist_transport=transport)
    losses = Trainer(model, split.train, tc).run().series("loss")
    return model, losses


def _tables(model):
    return (table_array(model.user_embeddings),
            table_array(model.item_embeddings))


@pytest.fixture(scope="module")
def baseline(tiny_split):
    """In-process shards=2 Adam run — the parity reference."""
    model, losses = _train_gnmr(tiny_split, shards=2, dist="off")
    return _tables(model), losses


def assert_bit_parity(model, losses, baseline):
    (ref_users, ref_items), ref_losses = baseline
    assert losses == ref_losses  # loss trace, bit for bit
    users, items = _tables(model)
    np.testing.assert_array_equal(users, ref_users)
    np.testing.assert_array_equal(items, ref_items)


class TestSyncParity:
    def test_inline_transport(self, tiny_split, baseline):
        model, losses = _train_gnmr(tiny_split, dist="sync",
                                    transport="inline")
        assert_bit_parity(model, losses, baseline)

    def test_shm_transport(self, tiny_split, baseline):
        model, losses = _train_gnmr(tiny_split, dist="sync", transport="shm",
                                    workers=2)
        assert_bit_parity(model, losses, baseline)

    def test_pipe_transport(self, tiny_split, baseline):
        model, losses = _train_gnmr(tiny_split, dist="sync",
                                    transport="pipe", workers=2)
        assert_bit_parity(model, losses, baseline)

    def test_single_worker_owns_all_shards(self, tiny_split, baseline):
        """W < K: round-robin multiplexing must not disturb parity."""
        model, losses = _train_gnmr(tiny_split, dist="sync", transport="shm",
                                    workers=1)
        assert_bit_parity(model, losses, baseline)

    def test_async_with_zero_staleness_is_sync(self, tiny_split, baseline):
        model, losses = _train_gnmr(tiny_split, dist="async", staleness=0,
                                    transport="shm", workers=2)
        assert_bit_parity(model, losses, baseline)

    def test_sgd_dense_frames(self, tiny_split):
        """SGD under full propagation pushes dense blocks, not row-sparse."""
        ref_model, ref_losses = _train_gnmr(tiny_split, dist="off",
                                            optimizer="sgd",
                                            propagation="full")
        model, losses = _train_gnmr(tiny_split, dist="sync", transport="shm",
                                    workers=2, optimizer="sgd",
                                    propagation="full")
        assert losses == ref_losses
        for got, want in zip(_tables(model), _tables(ref_model)):
            np.testing.assert_array_equal(got, want)


class TestAsyncMode:
    def test_stale_pushes_converge(self, tiny_split):
        """No parity claim under staleness>0 — but training must finish
        with finite losses and fully-applied owners."""
        model, losses = _train_gnmr(tiny_split, dist="async", staleness=3,
                                    transport="shm", workers=2)
        assert len(losses) == 2  # one entry per epoch
        assert all(np.isfinite(losses))
        users, items = _tables(model)
        assert np.all(np.isfinite(users)) and np.all(np.isfinite(items))


class TestCheckpointAfterDist:
    def test_drained_tables_roundtrip_with_hashes(self, tiny_split, tmp_path,
                                                  baseline):
        """close() drains in-flight pushes, so a checkpoint saved after a
        dist run holds the fully-applied tables — and reloads bit-equal
        through the integrity-hash verification added in this PR."""
        model, losses = _train_gnmr(tiny_split, dist="sync", transport="shm",
                                    workers=2)
        path = save_checkpoint(model, tmp_path / "dist.npz")
        config = GNMRConfig(pretrain=False, seed=0, num_layers=2,
                            dropout=0.0, shards=2, shard_strategy="range")
        clone = GNMR(tiny_split.train, config)
        load_checkpoint(clone, path)  # verify=True re-hashes every array
        assert_bit_parity(clone, losses, baseline)

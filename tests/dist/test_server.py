"""Shard-owner and bridge semantics, driven in-process where possible.

``ShardOwner`` is deliberately process-free so the decode→apply path the
worker entrypoint runs can be exercised (and coverage-traced) right here;
a couple of small multi-process tests then prove the same path over real
shm rings, pipes, and the ``spawn`` start method.
"""

import copy

import numpy as np
import pytest

from repro.dist import DistParameterServer, ShardOwner, TransportError
from repro.dist.codec import KIND_PUSH, KIND_STOP, encode_push, encode_stop
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam
from repro.tensor.rowsparse import RowSparseGrad


def make_params(rng, shapes, dtype=np.float64):
    return [Parameter(rng.standard_normal(s), dtype=dtype) for s in shapes]


def sharded_groups(params):
    """One shard-labeled optimizer group per parameter."""
    return [{"params": [p], "shard": k} for k, p in enumerate(params)]


def random_grads(rng, params, sparse=True):
    grads = []
    for p in params:
        if sparse and p.data.ndim == 2:
            nnz = int(rng.integers(1, p.data.shape[0] + 1))
            idx = rng.choice(p.data.shape[0], size=nnz, replace=False)
            grads.append(RowSparseGrad(
                idx, rng.standard_normal((nnz,) + p.data.shape[1:]),
                p.data.shape[0]))
        else:
            grads.append(rng.standard_normal(p.data.shape))
    return grads


class TestShardOwner:
    @pytest.mark.parametrize("optimizer,opt_cls", [("adam", Adam),
                                                   ("sgd", SGD)])
    def test_apply_matches_in_process_optimizer(self, optimizer, opt_cls):
        rng = np.random.default_rng(0)
        params = make_params(rng, [(6, 3), (4,)])
        reference = [Parameter(np.array(p.data)) for p in params]
        ref_opt = opt_cls(reference, lr=0.05)
        owner = ShardOwner(params, optimizer=optimizer, lr=0.05)
        for step in range(4):
            lr = 0.05 * (0.9 ** step)
            grads = random_grads(rng, reference)
            applied, kind = owner.apply_frame(
                encode_push(step, lr, [copy.deepcopy(g) for g in grads]))
            assert kind == KIND_PUSH and applied == step
            ref_opt.lr = lr
            for p, g in zip(reference, grads):
                p.grad = g
            ref_opt.step()
            for p in reference:
                p.grad = None
        for p, r in zip(params, reference):
            np.testing.assert_array_equal(p.data, r.data)

    def test_none_grads_advance_the_clock(self):
        """A push with no gradients still counts as an applied step."""
        params = make_params(np.random.default_rng(1), [(3, 2)])
        owner = ShardOwner(params, lr=0.1)
        before = np.array(params[0].data)
        step, kind = owner.apply_frame(encode_push(0, 0.1, [None]))
        assert (step, kind) == (0, KIND_PUSH)
        np.testing.assert_array_equal(params[0].data, before)

    def test_stop_frame_ends_the_loop(self):
        owner = ShardOwner(make_params(np.random.default_rng(2), [(2, 2)]))
        step, kind = owner.apply_frame(encode_stop())
        assert kind == KIND_STOP
        assert step == -1  # nothing applied yet

    def test_grad_count_mismatch_raises(self):
        owner = ShardOwner(make_params(np.random.default_rng(3), [(2, 2)]))
        with pytest.raises(TransportError, match="1 owned parameters"):
            owner.apply(0, 0.1, [None, None])

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError, match="at least one parameter"):
            ShardOwner([])

    def test_unknown_optimizer_rejected(self):
        params = make_params(np.random.default_rng(4), [(2, 2)])
        with pytest.raises(ValueError, match="unknown optimizer"):
            ShardOwner(params, optimizer="lbfgs")


class TestBridgeValidation:
    def test_unknown_transport(self):
        params = make_params(np.random.default_rng(5), [(2, 2)])
        with pytest.raises(ValueError, match="unknown transport"):
            DistParameterServer(sharded_groups(params), transport="carrier")

    def test_negative_staleness(self):
        params = make_params(np.random.default_rng(5), [(2, 2)])
        with pytest.raises(ValueError, match="staleness"):
            DistParameterServer(sharded_groups(params), staleness=-1,
                                transport="inline")

    def test_requires_shard_groups(self):
        params = make_params(np.random.default_rng(5), [(2, 2)])
        with pytest.raises(ValueError, match="shard-labeled"):
            DistParameterServer([{"params": params, "shard": None}],
                                transport="inline")

    def test_worker_count_capped_at_shards(self):
        params = make_params(np.random.default_rng(6), [(2, 2)] * 3)
        server = DistParameterServer(sharded_groups(params), workers=10,
                                     transport="inline")
        assert server.num_workers == 3
        server.close()

    def test_round_robin_assignment(self):
        params = make_params(np.random.default_rng(7), [(2, 2)] * 5)
        server = DistParameterServer(sharded_groups(params), workers=2,
                                     transport="inline")
        # shards 0,2,4 → worker 0; shards 1,3 → worker 1
        assert [len(ps) for ps in server._owned_params] == [3, 2]
        assert server._owned_params[0][0] is params[0]
        assert server._owned_params[1][0] is params[1]
        server.close()


class TestInlineBridge:
    def test_push_matches_in_process_optimizer(self):
        rng = np.random.default_rng(8)
        params = make_params(rng, [(6, 3), (5, 2)])
        reference = [Parameter(np.array(p.data)) for p in params]
        ref_opt = Adam(reference, lr=0.02)
        server = DistParameterServer(sharded_groups(params), lr=0.02,
                                     workers=2, transport="inline")
        for step in range(3):
            grads = random_grads(rng, reference)
            for p, g in zip(params, grads):
                p.grad = copy.deepcopy(g)
            server.throttle()  # inline: trivially satisfied
            assert server.push(lr=0.02) == step
            for p, g in zip(reference, grads):
                p.grad = g
            ref_opt.step()
            for p in reference:
                p.grad = None
        server.drain()
        assert server.applied_steps() == [2, 2]
        for p in params:
            assert p.grad is None  # push clears trainer-side grads
        server.close()
        for p, r in zip(params, reference):
            np.testing.assert_array_equal(p.data, r.data)

    def test_push_after_close_raises(self):
        params = make_params(np.random.default_rng(9), [(2, 2)])
        server = DistParameterServer(sharded_groups(params),
                                     transport="inline")
        server.close()
        server.close()  # idempotent
        with pytest.raises(TransportError, match="closed"):
            server.push()


class TestProcessBridge:
    """Small but real: subprocess owners over each transport."""

    @pytest.mark.parametrize("transport", ["shm", "pipe"])
    def test_sync_parity_with_local_optimizer(self, transport):
        rng = np.random.default_rng(10)
        params = make_params(rng, [(8, 4), (6, 4)])
        reference = [Parameter(np.array(p.data)) for p in params]
        ref_opt = Adam(reference, lr=0.05)
        grads = [random_grads(rng, reference) for _ in range(5)]
        with DistParameterServer(sharded_groups(params), lr=0.05, workers=2,
                                 transport=transport, timeout=60.0) as server:
            for step, step_grads in enumerate(grads):
                server.throttle()
                for p, g in zip(params, step_grads):
                    p.grad = copy.deepcopy(g)
                server.push(lr=0.05)
                for p, g in zip(reference, step_grads):
                    p.grad = g
                ref_opt.step()
                for p in reference:
                    p.grad = None
            server.drain()
            assert server.applied_steps() == [4, 4]
        for p, r in zip(params, reference):
            np.testing.assert_array_equal(p.data, r.data)
            assert isinstance(p.data, np.ndarray)  # private again post-close

    def test_spawn_start_method(self):
        """Handles and frames must survive pickling under spawn."""
        rng = np.random.default_rng(11)
        params = make_params(rng, [(4, 2)])
        reference = [Parameter(np.array(p.data)) for p in params]
        ref_opt = Adam(reference, lr=0.1)
        grads = random_grads(rng, reference)
        with DistParameterServer(sharded_groups(params), lr=0.1,
                                 transport="shm", start_method="spawn",
                                 timeout=120.0) as server:
            for p, g in zip(params, grads):
                p.grad = copy.deepcopy(g)
            server.push(lr=0.1)
            server.drain()
        for p, g in zip(reference, grads):
            p.grad = g
        ref_opt.step()
        np.testing.assert_array_equal(params[0].data, reference[0].data)

    def test_async_window_lets_trainer_lead(self):
        """staleness=s admits pushes up to s ahead of the slowest owner."""
        rng = np.random.default_rng(12)
        params = make_params(rng, [(4, 2)])
        with DistParameterServer(sharded_groups(params), lr=0.01,
                                 staleness=3, transport="shm",
                                 timeout=60.0) as server:
            assert server.staleness == 3
            for _ in range(6):
                server.throttle()
                params[0].grad = random_grads(rng, params)[0]
                server.push(lr=0.01)
            server.drain()
            assert server.applied_steps() == [5]

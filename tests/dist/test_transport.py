"""Transport-layer tests: shared blocks, SPSC rings, and the pipe fallback.

These run producer and consumer in one process (plus threads for the
blocking paths) — the cross-*process* behaviour is covered by the server
and parity suites. Same-process coverage is what lets ``tools/pycov.py``
(which cannot trace subprocesses) see the ring arithmetic.
"""

import threading
import time

import multiprocessing

import numpy as np
import pytest

from repro.dist import PipeChannel, SharedBlock, ShmRing, TransportError
from repro.dist.codec import frame


class TestSharedBlock:
    def test_create_attach_roundtrip(self):
        src = np.arange(12, dtype=np.float64).reshape(3, 4)
        block = SharedBlock.create(src)
        try:
            view = SharedBlock.attach(block.handle)
            np.testing.assert_array_equal(view.array, src)
            # writes through either mapping are visible to the other
            view.array[1, 2] = -7.0
            assert block.array[1, 2] == -7.0
            view.close()
        finally:
            block.close()

    def test_handle_describes_layout(self):
        block = SharedBlock.create(np.zeros((2, 5), dtype=np.float32))
        try:
            assert block.handle.shape == (2, 5)
            assert np.dtype(block.handle.dtype) == np.float32
        finally:
            block.close()

    def test_creator_close_unlinks(self):
        block = SharedBlock.create(np.zeros(3))
        handle = block.handle
        block.close()
        with pytest.raises(FileNotFoundError):
            SharedBlock.attach(handle)

    def test_empty_array(self):
        block = SharedBlock.create(np.empty(0))
        try:
            assert block.array.shape == (0,)
        finally:
            block.close()


@pytest.fixture
def ring():
    r = ShmRing.create(multiprocessing, capacity=128)
    yield r
    r.close()


class TestShmRing:
    def test_fifo_roundtrip(self, ring):
        bodies = [b"alpha", b"bee", b"c" * 40]
        for body in bodies:
            ring.send(frame(body))
        assert [ring.recv(timeout=1.0) for _ in bodies] == bodies

    def test_wraparound_preserves_frames(self, ring):
        """Push far more bytes than the capacity; cursors wrap mod 128."""
        for i in range(50):
            body = bytes([i]) * (7 + i % 11)
            ring.send(frame(body), timeout=5.0)
            assert ring.recv(timeout=1.0) == body

    def test_frame_exactly_at_capacity(self, ring):
        body = b"m" * (ring.capacity - 4)  # framed size == capacity
        ring.send(frame(body), timeout=5.0)
        assert ring.recv(timeout=1.0) == body

    def test_oversized_frame_rejected(self, ring):
        with pytest.raises(TransportError, match="exceeds ring capacity"):
            ring.send(frame(b"x" * ring.capacity))

    def test_recv_timeout_returns_none(self, ring):
        assert ring.recv(timeout=0.01) is None

    def test_send_blocks_until_consumer_frees_space(self, ring):
        ring.send(frame(b"f" * 100))  # nearly full
        received = []

        def consume():
            time.sleep(0.05)
            received.append(ring.recv(timeout=1.0))

        t = threading.Thread(target=consume)
        t.start()
        ring.send(frame(b"g" * 100), timeout=5.0)  # must wait for consume
        t.join()
        assert received == [b"f" * 100]
        assert ring.recv(timeout=1.0) == b"g" * 100

    def test_send_to_dead_consumer_raises(self, ring):
        ring.send(frame(b"f" * 100))
        with pytest.raises(TransportError, match="died"):
            ring.send(frame(b"g" * 100), alive=lambda: False)

    def test_send_timeout_on_full_ring(self, ring):
        ring.send(frame(b"f" * 100))
        with pytest.raises(TransportError, match="timed out"):
            ring.send(frame(b"g" * 100), timeout=0.05)

    def test_threaded_stream_keeps_order(self):
        ring = ShmRing.create(multiprocessing, capacity=256)
        try:
            bodies = [bytes([i % 256]) * (5 + i % 90) for i in range(200)]

            def produce():
                for body in bodies:
                    ring.send(frame(body), timeout=10.0)

            t = threading.Thread(target=produce)
            t.start()
            out = [ring.recv(timeout=10.0) for _ in bodies]
            t.join()
            assert out == bodies
        finally:
            ring.close()

    def test_capacity_floor(self):
        with pytest.raises(ValueError, match="at least 64"):
            ShmRing.create(multiprocessing, capacity=16)

    def test_attach_shares_cursors(self):
        ring = ShmRing.create(multiprocessing, capacity=128)
        try:
            peer = ShmRing.attach(ring.handle)
            ring.send(frame(b"cross"))
            assert peer.recv(timeout=1.0) == b"cross"
            peer.close()
        finally:
            ring.close()


class TestPipeChannel:
    def test_roundtrip(self):
        sender, receiver = PipeChannel.pair(multiprocessing)
        try:
            sender.send(frame(b"hello"))
            assert receiver.recv(timeout=1.0) == b"hello"
        finally:
            sender.close()
            receiver.close()

    def test_recv_timeout_returns_none(self):
        sender, receiver = PipeChannel.pair(multiprocessing)
        try:
            assert receiver.recv(timeout=0.01) is None
        finally:
            sender.close()
            receiver.close()

    def test_recv_after_sender_closed_raises(self):
        sender, receiver = PipeChannel.pair(multiprocessing)
        sender.close()
        with pytest.raises(TransportError, match="pipe recv"):
            receiver.recv(timeout=1.0)
        receiver.close()

    def test_send_after_receiver_closed_raises(self):
        sender, receiver = PipeChannel.pair(multiprocessing)
        receiver.close()
        with pytest.raises(TransportError, match="pipe send"):
            # a pipe buffers; the break may need more than one write
            for _ in range(64):
                sender.send(frame(b"x" * 4096))
        sender.close()

"""Attribute-enhanced GNMR: the paper's future-work extension, working.

The paper's conclusion proposes "exploring the attribute features from
user and item side ... to further alleviate the data sparsity problem".
This example attaches synthetic attributes (spectral coordinates of the
interaction structure + noise) to a sparse Yelp-like dataset and compares
GNMR with and without the side-feature projection, at two sparsity levels.

Run:  python examples/attribute_enhanced.py
"""

import numpy as np

from repro.core import GNMR, GNMRConfig
from repro.data import (
    build_eval_candidates,
    leave_one_out_split,
    synthesize_attributes,
    yelp_like,
)
from repro.eval import evaluate_model
from repro.experiments import format_table
from repro.train import TrainConfig

TRAIN = TrainConfig(epochs=30, steps_per_epoch=12, batch_users=24,
                    per_user=3, lr=5e-3, seed=21)


def run_pair(scale: float, label: str, results: dict) -> None:
    data = yelp_like(num_users=100, num_items=220, seed=13, scale=scale)
    featured = synthesize_attributes(data, num_features=8, noise=0.4, seed=2)
    split = leave_one_out_split(featured)
    candidates = build_eval_candidates(split.train, split.test_users,
                                       split.test_items, num_negatives=99,
                                       rng=np.random.default_rng(5))
    base = GNMRConfig(pretrain=True, pretrain_epochs=8, seed=21)
    for name, config in [
        (f"GNMR ({label})", base),
        (f"GNMR+attrs ({label})", base.variant(use_side_features=True)),
    ]:
        model = GNMR(split.train, config)
        model.fit(split.train, TRAIN)
        outcome = evaluate_model(model, candidates)
        results[name] = {"HR@10": outcome.hr(10), "NDCG@10": outcome.ndcg(10)}
        print(f"  done: {name}")


def main() -> None:
    results: dict[str, dict[str, float]] = {}
    print("Dense regime (normal interaction volume):")
    run_pair(scale=1.0, label="dense", results=results)
    print("Sparse regime (40% of the interactions):")
    run_pair(scale=0.4, label="sparse", results=results)

    print()
    print(format_table(results, title="Attribute extension on yelp-like data"))
    print("\nThe attribute projection matters most in the sparse regime — the"
          "\npaper's motivation for the extension (alleviating data sparsity).")


if __name__ == "__main__":
    main()

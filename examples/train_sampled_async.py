"""Async double-buffered sampled training, end to end.

Trains GNMR on a ``taobao_like`` multi-behavior graph through the three
propagation modes and compares them:

1. ``full`` — whole-graph propagation every step (the bit-reproducible
   reference);
2. ``sampled`` — fanout-capped monolithic subgraph blocks with row-sparse
   gradients;
3. ``async`` — the double-buffered pipeline: pre-drawn batch stream,
   per-hop layered blocks extracted by a background worker, a per-hop
   fanout schedule ``(10, 5)``.

Also demonstrates the determinism contract: ``workers=0`` (inline) and
``workers=1`` (background thread) produce identical loss trajectories.

Run::

    PYTHONPATH=src python examples/train_sampled_async.py
"""

import time

import numpy as np

from repro.core import GNMR, GNMRConfig
from repro.data import build_eval_candidates, leave_one_out_split, taobao_like
from repro.eval import evaluate_model
from repro.train import TrainConfig, Trainer


def make_model(split):
    # float32 + no pretrain keeps the example snappy; seed fixes the init
    return GNMR(split.train, GNMRConfig(num_layers=2, pretrain=False,
                                        dtype="float32", seed=0))


def train(split, candidates, propagation, **overrides):
    model = make_model(split)
    config = TrainConfig(epochs=6, steps_per_epoch=8, batch_users=32,
                         per_user=2, seed=0, propagation=propagation,
                         **overrides)
    start = time.perf_counter()
    history = Trainer(model, split.train, config).run()
    elapsed = time.perf_counter() - start
    hr = evaluate_model(model, candidates).hr(10)
    return history, elapsed, hr


def main():
    print("building taobao-like multi-behavior dataset ...")
    # big enough that per-step graph cost dominates; see docs/training.md
    # for why tiny graphs should just use propagation="full"
    data = taobao_like(num_users=2500, num_items=4000, seed=42)
    split = leave_one_out_split(data)
    candidates = build_eval_candidates(
        split.train, split.test_users, split.test_items,
        num_negatives=99, rng=np.random.default_rng(0))

    rows = []
    for label, kwargs in [
        ("full", dict()),
        ("sampled fanout=10", dict(propagation="sampled", fanout=10)),
        ("async fanout=(10,5) workers=1",
         dict(propagation="async", fanout=(10, 5), workers=1)),
    ]:
        propagation = kwargs.pop("propagation", "full")
        history, elapsed, hr = train(split, candidates, propagation, **kwargs)
        rows.append((label, elapsed, history.series("loss")[-1], hr))
        print(f"  {label:32s} {elapsed:6.2f}s  "
              f"final-loss={rows[-1][2]:.3f}  HR@10={hr:.3f}")

    full_time = rows[0][1]
    print("\nspeedups vs full-graph training:")
    for label, elapsed, _, _ in rows[1:]:
        print(f"  {label:32s} {full_time / elapsed:5.2f}x")

    # determinism: inline (workers=0) replays the async streams exactly
    losses = {}
    for workers in (0, 1):
        model = make_model(split)
        config = TrainConfig(epochs=3, steps_per_epoch=6, batch_users=16,
                             per_user=2, seed=0, propagation="async",
                             fanout=(10, 5), workers=workers)
        losses[workers] = Trainer(model, split.train, config).run().series("loss")
    assert losses[0] == losses[1], "workers=0 and workers=1 must match"
    print("\nasync-vs-sync loss trajectories identical at workers<=1:",
          [round(x, 4) for x in losses[1]])


if __name__ == "__main__":
    main()

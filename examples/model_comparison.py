"""Model zoo comparison: the paper's Table II in miniature.

Trains every implemented recommender (12 baselines + GNMR) on the same
Yelp-like dataset and prints a ranking table next to the paper's reported
numbers. Absolute values differ (synthetic data, laptop scale); the
*ordering* — GNMR first, multi-behavior models strong — is the claim
being reproduced.

Run:  python examples/model_comparison.py        (~2-3 minutes)
"""

import time

from repro.experiments import (
    MODEL_NAMES,
    PAPER_TABLE2,
    ExperimentScale,
    dataset_by_name,
    format_comparison,
)
from repro.experiments.runners import _prepare, train_and_evaluate


def main() -> None:
    scale = ExperimentScale(num_users=110, num_items=220, epochs=30)
    run = _prepare(dataset_by_name("yelp", scale), scale)
    print(f"Dataset: {run.dataset.describe()}")
    print(f"Evaluating {len(MODEL_NAMES)} models "
          f"on {len(run.candidates)} test users...\n")

    measured: dict[str, dict[str, float]] = {}
    for name in MODEL_NAMES:
        start = time.time()
        outcome = train_and_evaluate(name, run)
        measured[name] = {"HR@10": outcome.hr(10), "NDCG@10": outcome.ndcg(10)}
        print(f"  {name:10s} HR@10={outcome.hr(10):.3f} "
              f"NDCG@10={outcome.ndcg(10):.3f}  ({time.time() - start:.1f}s)")

    paper = {m: PAPER_TABLE2[m]["yelp"] for m in MODEL_NAMES}
    print()
    print(format_comparison(measured, paper,
                            title="Yelp-like data: ours (synthetic, small) vs paper"))

    best = max(measured, key=lambda m: measured[m]["HR@10"])
    print(f"\nBest model by HR@10: {best}")


if __name__ == "__main__":
    main()

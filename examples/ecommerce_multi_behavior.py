"""E-commerce scenario: quantify the value of auxiliary behaviors.

The paper's motivating claim is that browse/favorite/cart signals improve
purchase prediction. This example trains GNMR four ways on the same
Taobao-like funnel data —

* full multi-behavior graph (the paper's GNMR),
* purchase-only graph ("only like" in Table IV),
* GNMR without the cart signal,
* the NMTR multi-behavior baseline —

and reports the lift, plus the learned cross-behavior attention matrix
showing which behaviors inform each other.

Run:  python examples/ecommerce_multi_behavior.py
"""

import numpy as np

from repro.core import GNMR, GNMRConfig
from repro.data import build_eval_candidates, leave_one_out_split, taobao_like
from repro.eval import evaluate_model
from repro.experiments import format_table
from repro.models import NMTR
from repro.train import TrainConfig

TRAIN = TrainConfig(epochs=36, steps_per_epoch=12, batch_users=24,
                    per_user=3, lr=5e-3, seed=11)


def main() -> None:
    data = taobao_like(num_users=120, num_items=240, seed=5)
    split = leave_one_out_split(data)
    candidates = build_eval_candidates(split.train, split.test_users,
                                       split.test_items, num_negatives=99,
                                       rng=np.random.default_rng(2))
    base = GNMRConfig(pretrain=True, pretrain_epochs=8, seed=11)

    results: dict[str, dict[str, float]] = {}

    def record(label: str, model) -> None:
        model.fit(split.train, TRAIN)
        outcome = evaluate_model(model, candidates)
        results[label] = {"HR@10": outcome.hr(10), "NDCG@10": outcome.ndcg(10)}
        print(f"  done: {label}")

    print("Training four models on the same purchase-prediction task...")
    full = GNMR(split.train, base)
    record("GNMR (all behaviors)", full)
    record("GNMR (purchase only)",
           GNMR(split.train, base.variant(graph_behaviors=("purchase",))))
    record("GNMR (w/o cart)",
           GNMR(split.train, base.variant(
               graph_behaviors=("page_view", "favorite", "purchase"))))
    record("NMTR baseline", NMTR(split.train, seed=11))

    print()
    print(format_table(results, title="Purchase prediction on taobao-like data"))

    only = results["GNMR (purchase only)"]["HR@10"]
    all_b = results["GNMR (all behaviors)"]["HR@10"]
    if only > 0:
        print(f"\nAuxiliary-behavior lift: {100 * (all_b - only) / only:+.1f}% HR@10")

    print("\nCross-behavior attention (rows attend to columns, layer 1):")
    attention = full.behavior_attention()
    names = full.behavior_names
    header = "            " + "  ".join(f"{n[:9]:>9s}" for n in names)
    print(header)
    for name, row in zip(names, attention):
        cells = "  ".join(f"{v:9.3f}" for v in row)
        print(f"  {name[:9]:>9s} {cells}")


if __name__ == "__main__":
    main()

"""Rating-platform scenario: MovieLens-style behaviors from rating scores.

Reproduces the paper's §IV-A mapping (r ≤ 2 dislike, 2 < r < 4 neutral,
r ≥ 4 like) on synthetic MovieLens-like data and runs the component
ablation of Figure 2: GNMR vs GNMR-be (no type-specific behavior
embedding) vs GNMR-ma (no cross-behavior attention), plus a propagation
depth sweep (Figure 3, depths 0-3).

Run:  python examples/rating_platform_ablation.py
"""

import numpy as np

from repro.core import GNMR, GNMRConfig
from repro.data import build_eval_candidates, leave_one_out_split, movielens_like
from repro.eval import evaluate_model
from repro.experiments import format_table
from repro.train import TrainConfig

TRAIN = TrainConfig(epochs=36, steps_per_epoch=12, batch_users=24,
                    per_user=3, lr=5e-3, seed=4)


def evaluate_variant(split, candidates, config: GNMRConfig) -> dict[str, float]:
    model = GNMR(split.train, config)
    model.fit(split.train, TRAIN)
    outcome = evaluate_model(model, candidates)
    return {"HR@10": outcome.hr(10), "NDCG@10": outcome.ndcg(10)}


def main() -> None:
    data = movielens_like(num_users=120, num_items=240, seed=8)
    print("Dataset:", data.describe())
    per_behavior = {b: data.interaction_count(b) for b in data.behavior_names}
    print("Interactions per behavior (from the rating mapping):", per_behavior)

    split = leave_one_out_split(data)
    candidates = build_eval_candidates(split.train, split.test_users,
                                       split.test_items, num_negatives=99,
                                       rng=np.random.default_rng(3))
    base = GNMRConfig(pretrain=True, pretrain_epochs=8, seed=4)

    print("\n--- Figure 2: component ablation ---")
    ablation = {
        "GNMR-be": evaluate_variant(split, candidates,
                                    base.variant(use_behavior_embedding=False)),
        "GNMR-ma": evaluate_variant(split, candidates,
                                    base.variant(use_message_attention=False)),
        "GNMR": evaluate_variant(split, candidates, base),
    }
    print(format_table(ablation, title="Component ablation (movielens-like)"))

    print("\n--- Figure 3: propagation depth ---")
    depth_rows: dict[str, dict[str, float]] = {}
    absolute: dict[int, dict[str, float]] = {}
    for depth in (0, 1, 2, 3):
        absolute[depth] = evaluate_variant(split, candidates,
                                           base.variant(num_layers=depth))
    ref = absolute[2]
    for depth, row in absolute.items():
        depth_rows[f"GNMR-{depth}"] = {
            "HR@10": row["HR@10"],
            "NDCG@10": row["NDCG@10"],
            "HR% vs L2": 100.0 * (row["HR@10"] - ref["HR@10"]) / max(ref["HR@10"], 1e-9),
        }
    print(format_table(depth_rows, title="Depth sweep (movielens-like)"))


if __name__ == "__main__":
    main()

"""Quickstart: train GNMR on a multi-behavior dataset and recommend.

Walks the full public API in ~40 lines of calls:
dataset → split → candidates → model → fit → evaluate → recommend.

Run:  python examples/quickstart.py
"""

from repro.core import GNMR, GNMRConfig
from repro.data import build_eval_candidates, leave_one_out_split, taobao_like
from repro.eval import evaluate_model
from repro.train import TrainConfig


def main() -> None:
    # 1. A Taobao-like multi-behavior dataset: page_view / favorite / cart /
    #    purchase, where 'purchase' is the behavior we want to predict.
    data = taobao_like(num_users=150, num_items=250, seed=42)
    print("Dataset:", data.describe())

    # 2. Leave-one-out split: each user's most recent purchase is held out.
    split = leave_one_out_split(data)
    print(f"Held-out test interactions: {len(split)}")

    # 3. Evaluation candidates: the positive + 99 sampled negatives per user.
    candidates = build_eval_candidates(split.train, split.test_users,
                                       split.test_items, num_negatives=99)

    # 4. GNMR with the paper's hyperparameters (d=16, C=8 memory dims,
    #    2 propagation layers, autoencoder pre-training).
    model = GNMR(split.train, GNMRConfig(num_layers=2, pretrain=True,
                                         pretrain_epochs=10, seed=0))
    print(f"Model parameters: {model.num_parameters():,}")

    # 5. Pairwise training (Eq. 7 hinge loss, Adam, 0.96 lr decay).
    history = model.fit(split.train, TrainConfig(
        epochs=40, steps_per_epoch=12, batch_users=32, per_user=3,
        lr=5e-3, seed=0))
    print(f"Final training loss: {history.last()['loss']:.4f}")

    # 6. Evaluate with HR@N / NDCG@N.
    result = evaluate_model(model, candidates)
    print(f"HR@10  = {result.hr(10):.3f}")
    print(f"NDCG@10 = {result.ndcg(10):.3f}")
    print(f"MRR     = {result.mrr():.3f}")

    # 7. Produce recommendations for one user, excluding seen items.
    user = int(split.test_users[0])
    seen = set(split.train.user_target_items(user).tolist())
    print(f"\nTop-5 recommendations for user {user} (excluding purchases):")
    for item, score in model.recommend(user, top_n=5, exclude_items=seen):
        print(f"  item {item:4d}  score {score:+.4f}")

    # 8. Inspect what the model learned about behavior types.
    print("\nLearned behavior-type importance (ψ gates, user side):")
    for behavior, weight in zip(model.behavior_names, model.behavior_importance()):
        print(f"  {behavior:10s} {weight:.3f}")


if __name__ == "__main__":
    main()

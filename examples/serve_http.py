"""The online serving tier, end to end: train, serve over HTTP, verify.

Trains a small GNMR, embeds :class:`repro.serve.RecommendationHTTPServer`
in-process on a free port, and fires a fleet of concurrent clients at
``GET /recommend``. The point the example proves: the request-coalescing
batcher answers concurrent single-user requests with *batched* retrieval
calls, and every response is identical to what a library-direct
``RecommendationService.recommend`` call returns for that user — the
HTTP tier changes how requests arrive, never what they answer. A
hot-swap follows: train one more epoch, let the freshness watcher flip
the snapshot, and watch ``/healthz`` report the new version.

Run:  PYTHONPATH=src python examples/serve_http.py
"""

import http.client
import json
import threading

import numpy as np

from repro.core import GNMR, GNMRConfig
from repro.data import leave_one_out_split, taobao_like
from repro.serve import RecommendationService
from repro.serve.http import RecommendationHTTPServer
from repro.train import TrainConfig

TOP_K = 5
CLIENTS = 8


def fetch(port: int, path: str) -> tuple[int, dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def main() -> None:
    data = taobao_like(num_users=60, num_items=120, seed=7)
    split = leave_one_out_split(data)
    model = GNMR(split.train, GNMRConfig(pretrain=False, seed=7))
    model.fit(split.train, TrainConfig(epochs=2, steps_per_epoch=8,
                                       batch_users=16, seed=7))

    service = RecommendationService(model, train=split.train,
                                    k_default=TOP_K)
    server = RecommendationHTTPServer(service, port=0, max_batch=16,
                                      max_wait_ms=5.0,
                                      poll_interval_ms=50.0).start()
    print(f"serving on 127.0.0.1:{server.port}")

    try:
        # concurrent single-user requests — the batcher coalesces them
        results: dict[int, dict] = {}
        lock = threading.Lock()

        def client(user: int) -> None:
            status, payload = fetch(server.port,
                                    f"/recommend?user={user}&k={TOP_K}")
            assert status == 200, (status, payload)
            with lock:
                results[user] = payload

        threads = [threading.Thread(target=client, args=(user,))
                   for user in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # every response must match the library answer for that user
        reference = {row["user"]: row["items"] for row in service.recommend(
            np.arange(CLIENTS, dtype=np.int64), TOP_K).to_payload()}
        for user, payload in results.items():
            http_items = [r["item"] for r in payload["items"]]
            direct_items = [r["item"] for r in reference[user]]
            assert http_items == direct_items, (user, http_items, direct_items)
        batcher = server.batcher.stats()
        print(f"{CLIENTS} concurrent requests -> {batcher['batches']} "
              f"batched retrieval calls (largest {batcher['largest_batch']}); "
              "all rankings match library-direct calls")

        # hot swap: train on, watcher flips the snapshot off-request-path
        version_before = service.snapshot_version
        model.fit(split.train, TrainConfig(epochs=1, steps_per_epoch=8,
                                           batch_users=16, seed=8))
        for _ in range(200):
            if service.snapshot_version != version_before:
                break
            threading.Event().wait(0.05)
        health = fetch(server.port, "/healthz")[1]
        assert health["snapshot_version"] == service.snapshot_version
        print(f"hot swap: snapshot version {version_before} -> "
              f"{health['snapshot_version']} with the server up the whole "
              "time")

        stats = fetch(server.port, "/stats")[1]
        print("p50 request latency: "
              f"{stats['latency_ms']['request']['p50_ms']:.2f} ms over "
              f"{stats['requests']['total']} requests, "
              f"{stats['snapshot']['swaps']} snapshot swap(s)")
    finally:
        server.close()
    print("server closed cleanly")


if __name__ == "__main__":
    main()

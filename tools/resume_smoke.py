"""CI smoke for mid-epoch resume: train, SIGKILL, resume, bit-match.

The pytest resume suite simulates crashes with an in-process exception;
this script delivers a real ``SIGKILL`` — no cleanup handlers, no atexit,
the process is simply gone mid-epoch — and requires the resume contract
to hold anyway:

1. train a tiny sharded GNMR to completion in-process (the reference);
2. run the same training in a child process that saves its state every 3
   steps and SIGKILLs itself after step 7 (one step past the last save);
3. resume from the surviving state file and require the final embedding
   tables and loss trace to be bit-identical to the reference.

Because the training-state file is written atomically (temp +
``os.replace``), the kill can land at any instant without leaving a torn
state behind. Standalone, no test harness::

    PYTHONPATH=src python tools/resume_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

import numpy as np

EPOCHS = 4
KILL_AT_STEP = 7
SAVE_EVERY = 3


def build():
    from repro.core import GNMR, GNMRConfig
    from repro.data import leave_one_out_split, taobao_like

    split = leave_one_out_split(taobao_like(num_users=40, num_items=90,
                                            seed=0))
    model = GNMR(split.train, GNMRConfig(pretrain=False, seed=0,
                                         num_layers=2, dropout=0.0,
                                         shards=2, shard_strategy="range"))
    return model, split


def config(save_state=None):
    from repro.train import TrainConfig

    return TrainConfig(epochs=EPOCHS, steps_per_epoch=4, batch_users=8,
                       per_user=2, propagation="sampled", fanout=5, seed=0,
                       optimizer="adam", shards=2, save_state=save_state,
                       save_every_steps=SAVE_EVERY if save_state else None)


def child(state_path: str) -> int:
    """Train with periodic saves and SIGKILL ourselves mid-epoch."""
    from repro.train import Trainer

    model, split = build()

    def kill_hook(trainer, global_step):
        if global_step == KILL_AT_STEP:
            os.kill(os.getpid(), signal.SIGKILL)

    Trainer(model, split.train, config(state_path),
            step_hook=kill_hook).run()
    return 1  # unreachable unless the kill never fired


def main() -> int:
    from repro.shard import table_array
    from repro.train import Trainer
    from repro.train.resume import load_training_state

    state_path = "/tmp/resume_smoke_state.npz"
    if os.path.exists(state_path):
        os.unlink(state_path)

    reference, split = build()
    ref_losses = Trainer(reference, split.train, config()).run().series("loss")

    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child", state_path],
        env=dict(os.environ, PYTHONPATH="src"), cwd=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
    if proc.returncode != -signal.SIGKILL:
        print(f"child exited {proc.returncode}, expected SIGKILL "
              f"({-signal.SIGKILL})")
        return 1
    saved = load_training_state(state_path)
    expected_step = (KILL_AT_STEP // SAVE_EVERY) * SAVE_EVERY
    if saved.global_step != expected_step:
        print(f"state saved at step {saved.global_step}, "
              f"expected {expected_step}")
        return 1

    resumed, _ = build()
    losses = Trainer(resumed, split.train, config()).run(
        resume_from=state_path).series("loss")

    loss_ok = losses == ref_losses
    users_ok = bool(np.array_equal(table_array(resumed.user_embeddings),
                                   table_array(reference.user_embeddings)))
    items_ok = bool(np.array_equal(table_array(resumed.item_embeddings),
                                   table_array(reference.item_embeddings)))
    print(json.dumps({"killed_at_step": KILL_AT_STEP,
                      "resumed_from_step": saved.global_step,
                      "loss_trace_identical": loss_ok,
                      "user_tables_bit_equal": users_ok,
                      "item_tables_bit_equal": items_ok}))
    if loss_ok and users_ok and items_ok:
        print("resume smoke OK: SIGKILL mid-epoch, resumed run bit-matches")
        return 0
    print("resume smoke FAILED")
    return 1


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        sys.exit(child(sys.argv[2]))
    sys.exit(main())

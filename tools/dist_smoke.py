"""CI smoke for the multi-process parameter server (``repro.dist``).

Trains a small GNMR twice — once in-process with ``shards=2`` and once
with the shards owned by two real subprocesses over shared-memory
gradient transport (``dist="sync"``, ``transport="shm"``) — and requires
the synchronous mode's contract to hold on real multi-core CI hardware:
an identical loss trace and bit-identical final embedding tables.

Unlike the pytest parity suite (which also runs this comparison), this
script is a standalone end-to-end check with no test harness in the
loop, sized so a CI job can afford it on every push::

    PYTHONPATH=src python tools/dist_smoke.py
"""

from __future__ import annotations

import json
import sys

import numpy as np


def train(dist: str, transport: str = "shm") -> tuple[list, np.ndarray,
                                                      np.ndarray]:
    from repro.core import GNMR, GNMRConfig
    from repro.data import leave_one_out_split, taobao_like
    from repro.shard import table_array
    from repro.train import TrainConfig, Trainer

    split = leave_one_out_split(taobao_like(num_users=60, num_items=150,
                                            seed=0))
    config = GNMRConfig(pretrain=False, seed=0, num_layers=2, dropout=0.0,
                        shards=2, shard_strategy="range")
    model = GNMR(split.train, config)
    tc = TrainConfig(epochs=3, steps_per_epoch=5, batch_users=8, per_user=2,
                     propagation="sampled", fanout=5, seed=0,
                     optimizer="adam", shards=2, dist=dist,
                     dist_workers=2, dist_transport=transport)
    losses = Trainer(model, split.train, tc).run().series("loss")
    return (losses, table_array(model.user_embeddings),
            table_array(model.item_embeddings))


def main() -> int:
    ref_losses, ref_users, ref_items = train("off")
    dist_losses, dist_users, dist_items = train("sync")

    loss_ok = dist_losses == ref_losses
    users_ok = bool(np.array_equal(dist_users, ref_users))
    items_ok = bool(np.array_equal(dist_items, ref_items))
    print(json.dumps({
        "loss_trace_bit_equal": loss_ok,
        "user_table_bit_equal": users_ok,
        "item_table_bit_equal": items_ok,
        "epochs": len(ref_losses),
        "final_loss": ref_losses[-1],
    }, indent=2))
    if not (loss_ok and users_ok and items_ok):
        if not loss_ok:
            print(f"loss trace diverged:\n  in-process: {ref_losses}\n"
                  f"  dist sync:  {dist_losses}", file=sys.stderr)
        print("dist smoke FAILED: sync mode must bit-match in-process "
              "shards=2 training", file=sys.stderr)
        return 1
    print("dist smoke OK: cross-process sync training is bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Zero-dependency line-coverage runner + ratchet gate for the tier-1 suite.

Runs pytest in-process under a line tracer restricted to ``src/repro``,
computes per-file / per-package / total line coverage against an
AST-derived executable-line set, writes ``tools/coverage_report.json``,
and exits non-zero when coverage falls below the committed floors in
``tools/coverage_floor.json``.

Why not coverage.py: the development container (and any fresh clone) must
be able to run the gate with nothing but the standard library, and the
committed floor only means something if local runs and CI measure with the
*same* tool. On Python ≥ 3.12 the tracer uses ``sys.monitoring`` (PEP 669;
each (code, line) location fires once and is then disabled, so overhead is
near zero); older interpreters fall back to ``sys.settrace``.

Executable lines are the statement start lines from the AST, minus:

* module / class / function docstrings,
* any statement whose header line carries ``pragma: no cover`` (the whole
  statement span is excluded, matching how the repo already annotates),
* ``if __name__ == "__main__":`` blocks.

Usage (CI runs exactly this)::

    PYTHONPATH=src python tools/pycov.py -q        # args go to pytest
    python tools/pycov.py --report-only            # re-gate a saved report
"""

from __future__ import annotations

import ast
import json
import os
import sys
from collections import defaultdict
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO / "src" / "repro"
REPORT_PATH = REPO / "tools" / "coverage_report.json"
FLOOR_PATH = REPO / "tools" / "coverage_floor.json"


# ----------------------------------------------------------------------
# executable-line analysis
# ----------------------------------------------------------------------

def _node_span(node: ast.stmt) -> range:
    return range(node.lineno, (node.end_lineno or node.lineno) + 1)


def _is_main_guard(node: ast.stmt) -> bool:
    if not isinstance(node, ast.If):
        return False
    test = node.test
    names = [n.id for n in ast.walk(test)
             if isinstance(n, ast.Name)]
    return "__name__" in names


def executable_lines(path: Path) -> set[int]:
    """Statement start lines that a fully-exercised run should hit."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    pragma_lines = {i + 1 for i, line in enumerate(source.splitlines())
                    if "pragma: no cover" in line}
    lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            lines.add(node.lineno)

    def discard_span(span: range) -> None:
        for lineno in span:
            lines.discard(lineno)

    for node in ast.walk(tree):
        # docstrings parse as a leading constant-string Expr; not traced
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            body = node.body
            if (body and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)):
                discard_span(_node_span(body[0]))
        if isinstance(node, ast.stmt) and (node.lineno in pragma_lines
                                           or _is_main_guard(node)):
            discard_span(_node_span(node))
    return lines


def source_files() -> list[Path]:
    return sorted(SRC_ROOT.rglob("*.py"))


# ----------------------------------------------------------------------
# tracers
# ----------------------------------------------------------------------

class Tracer:
    """Collects covered line numbers per absolute source path."""

    def __init__(self):
        self.covered: dict[str, set[int]] = defaultdict(set)
        self._resolved: dict[str, str | None] = {}
        self._prefix = str(SRC_ROOT) + os.sep

    def _target(self, co_filename: str) -> str | None:
        """Absolute path if the frame belongs to src/repro, else None."""
        cached = self._resolved.get(co_filename, False)
        if cached is not False:
            return cached
        path = os.path.abspath(co_filename)
        target = path if (path.startswith(self._prefix)
                          or path == str(SRC_ROOT)) else None
        self._resolved[co_filename] = target
        return target

    # ---------------------------------------------------- sys.monitoring
    def start_monitoring(self) -> None:  # pragma: no cover - 3.12+ only
        mon = sys.monitoring
        mon.use_tool_id(mon.COVERAGE_ID, "pycov")

        def on_line(code, line_number):
            target = self._target(code.co_filename)
            if target is not None:
                self.covered[target].add(line_number)
            # each (code, line) location only needs to fire once
            return mon.DISABLE

        mon.register_callback(mon.COVERAGE_ID, mon.events.LINE, on_line)
        mon.set_events(mon.COVERAGE_ID, mon.events.LINE)

    def stop_monitoring(self) -> None:  # pragma: no cover - 3.12+ only
        mon = sys.monitoring
        mon.set_events(mon.COVERAGE_ID, 0)
        mon.register_callback(mon.COVERAGE_ID, mon.events.LINE, None)
        mon.free_tool_id(mon.COVERAGE_ID)

    # ------------------------------------------------------- sys.settrace
    def start_settrace(self) -> None:
        import threading

        def trace(frame, event, arg):
            if event == "call":
                if self._target(frame.f_code.co_filename) is None:
                    return None  # never line-trace foreign frames
                return trace
            if event == "line":
                target = self._target(frame.f_code.co_filename)
                if target is not None:
                    self.covered[target].add(frame.f_lineno)
            return trace

        threading.settrace(trace)
        sys.settrace(trace)

    def stop_settrace(self) -> None:
        import threading

        sys.settrace(None)
        threading.settrace(None)

    def start(self) -> None:
        if hasattr(sys, "monitoring"):  # pragma: no cover - version split
            self.start_monitoring()
        else:  # pragma: no cover
            self.start_settrace()

    def stop(self) -> None:
        if hasattr(sys, "monitoring"):  # pragma: no cover - version split
            self.stop_monitoring()
        else:  # pragma: no cover
            self.stop_settrace()


# ----------------------------------------------------------------------
# report + gate
# ----------------------------------------------------------------------

def package_of(path: Path) -> str:
    """Rollup key: ``repro/<subpackage>`` (or ``repro`` for top level)."""
    rel = path.relative_to(SRC_ROOT)
    if len(rel.parts) == 1:
        return "repro"
    return f"repro/{rel.parts[0]}"


def build_report(covered: dict[str, set[int]]) -> dict:
    files = {}
    packages: dict[str, dict] = defaultdict(lambda: {"executable": 0,
                                                     "covered": 0})
    total_exec = total_cov = 0
    for path in source_files():
        lines = executable_lines(path)
        hit = covered.get(str(path), set()) & lines
        rel = str(path.relative_to(REPO))
        files[rel] = {
            "executable": len(lines),
            "covered": len(hit),
            "percent": round(100.0 * len(hit) / len(lines), 2) if lines else 100.0,
            "missing": sorted(lines - hit),
        }
        pkg = packages[package_of(path)]
        pkg["executable"] += len(lines)
        pkg["covered"] += len(hit)
        total_exec += len(lines)
        total_cov += len(hit)
    for pkg in packages.values():
        pkg["percent"] = (round(100.0 * pkg["covered"] / pkg["executable"], 2)
                          if pkg["executable"] else 100.0)
    return {
        "total": {
            "executable": total_exec,
            "covered": total_cov,
            "percent": round(100.0 * total_cov / total_exec, 2)
            if total_exec else 100.0,
        },
        "packages": dict(sorted(packages.items())),
        "files": files,
        "tracer": "sys.monitoring" if hasattr(sys, "monitoring")
        else "sys.settrace",
        "python": sys.version.split()[0],
    }


def gate(report: dict) -> int:
    """Compare against the committed floors; 0 = pass."""
    if not FLOOR_PATH.exists():
        print(f"[warn] no committed floor at {FLOOR_PATH}; gate skipped")
        return 0
    floors = json.loads(FLOOR_PATH.read_text())
    failures = []
    total = report["total"]["percent"]
    floor = float(floors.get("total", 0.0))
    status = "PASS" if total >= floor else "FAIL"
    print(f"[{status}] total coverage {total:.2f}% (floor {floor:.2f}%)")
    if total < floor:
        failures.append("total")
    for name, pkg_floor in sorted(floors.get("packages", {}).items()):
        pkg = report["packages"].get(name)
        percent = pkg["percent"] if pkg else 0.0
        status = "PASS" if percent >= float(pkg_floor) else "FAIL"
        print(f"[{status}] {name} coverage {percent:.2f}% "
              f"(floor {float(pkg_floor):.2f}%)")
        if percent < float(pkg_floor):
            failures.append(name)
    if failures:
        print(f"coverage gate FAILED: {', '.join(failures)}")
        return 1
    print("coverage gate OK")
    return 0


def print_summary(report: dict) -> None:
    print("\npackage coverage:")
    for name, pkg in report["packages"].items():
        print(f"  {name:<22s} {pkg['percent']:6.2f}%  "
              f"({pkg['covered']}/{pkg['executable']})")
    total = report["total"]
    print(f"  {'TOTAL':<22s} {total['percent']:6.2f}%  "
          f"({total['covered']}/{total['executable']})")


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--report-only" in argv:
        report = json.loads(REPORT_PATH.read_text())
        print_summary(report)
        return gate(report)

    src_dir = str(REPO / "src")
    if src_dir not in sys.path:
        sys.path.insert(0, src_dir)

    tracer = Tracer()
    tracer.start()
    try:
        import pytest

        exit_code = pytest.main(argv or ["-q"])
    finally:
        tracer.stop()
    if exit_code != 0:
        print(f"pytest failed (exit {exit_code}); coverage not gated")
        return int(exit_code)

    report = build_report(tracer.covered)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {REPORT_PATH}")
    print_summary(report)
    return gate(report)


if __name__ == "__main__":
    sys.exit(main())

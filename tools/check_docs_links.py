"""Markdown link checker for the docs site (no network, no deps).

Validates every ``[text](target)`` and bare reference in ``docs/*.md`` and
``README.md``:

* relative file links must point at files that exist in the repo (anchors
  are stripped; ``#section`` anchors are checked against the target file's
  headings);
* ``http(s)`` links are format-checked only — CI must not flake on
  third-party outages;
* bare intra-doc anchors (``#heading``) must match a heading in the same
  file.

Exit code 1 with a per-link report when anything is broken.

Usage::

    python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces → dashes, drop punctuation."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    return {_anchor_of(m.group(1))
            for m in HEADING_RE.finditer(path.read_text())}


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    text = path.read_text()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        line = text[:match.start()].count("\n") + 1
        where = f"{path.relative_to(REPO)}:{line}"
        if target.startswith(("http://", "https://")):
            continue  # format ok; never hit the network in CI
        if target.startswith("mailto:"):
            continue
        base, _, anchor = target.partition("#")
        if not base:  # intra-document anchor
            if _anchor_of(anchor) not in _anchors(path):
                errors.append(f"{where}: missing anchor #{anchor}")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            errors.append(f"{where}: broken link {target!r}")
            continue
        if anchor and resolved.suffix == ".md":
            if _anchor_of(anchor) not in _anchors(resolved):
                errors.append(f"{where}: {base} has no anchor #{anchor}")
    return errors


def main() -> int:
    missing = [p for p in DOC_FILES if not p.exists()]
    if missing:
        for path in missing:
            print(f"missing doc file: {path}")
        return 1
    errors: list[str] = []
    checked = 0
    for path in DOC_FILES:
        errors.extend(check_file(path))
        checked += 1
    if errors:
        print(f"{len(errors)} broken link(s) across {checked} files:")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"link check OK: {checked} files, no broken links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
